//! A reusable execution runtime: one persistent worker pool plus the
//! shared configuration knobs every scenario duplicates otherwise.
//!
//! Historically each driver call (`run_er`, `run_sorted_neighborhood`,
//! …) spawned its own scoped worker threads per job phase and carried
//! its own copy of `reduce_tasks` / `parallelism` / `count_only` /
//! `matcher_cache_capacity`. A [`Runtime`] inverts that: it is created
//! **once**, owns a [`WorkerPool`] whose threads live as long as the
//! runtime, and hands out pool-bound [`Workflow`]s — so back-to-back
//! workflow executions share the same threads with zero per-run spawn
//! cost, and the shared knobs live in one [`RuntimeConfig`] that the
//! scenario configs embed instead of copying.
//!
//! The engine itself interprets `parallelism` and the `reduce_tasks`
//! default; `count_only` and `matcher_cache_capacity` are part of the
//! shared execution profile carried for the entity-resolution layers
//! (which alone interpret them) so that every scenario config draws
//! them from the same place.

use std::sync::Arc;

use crate::engine::default_parallelism;
use crate::fault::FaultPolicy;
use crate::pool::{PoolStats, SchedulingPolicy, WorkerPool};
use crate::trace::TraceSink;
use crate::workflow::Workflow;

/// The execution knobs shared by every scenario in the workspace —
/// extracted from the previously duplicated `ErConfig` / `SnConfig`
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Local worker threads (task slots). A [`Runtime`] spawns its
    /// pool with exactly this many slots.
    pub parallelism: usize,
    /// Default number of reduce tasks `r` for the jobs of a scenario.
    /// Blocking-based ER runs both its jobs with `r` reduce tasks;
    /// Sorted Neighborhood uses it as the number of contiguous key
    /// ranges (== reduce tasks of its matching job).
    pub reduce_tasks: usize,
    /// Capacity bound for the per-reduce-task prepared-entity caches
    /// (`None` = unbounded, right for paper-scale batch tasks; set a
    /// bound for long-running ingest whose key space grows without
    /// limit). Eviction costs recompute only — match output is
    /// bit-identical either way.
    pub matcher_cache_capacity: Option<usize>,
    /// Count comparisons without evaluating similarity (timing runs).
    pub count_only: bool,
    /// Map-side spill threshold in *records held open* per map task
    /// (`None` = never spill, the in-core default). When `Some(t)`, a
    /// map task seals its open bucket set into immutable sorted runs
    /// every time the open set reaches `t` records, so its unsorted
    /// resident working set never exceeds `t` records; the reduce-side
    /// k-way merge consumes the extra runs with byte-identical job
    /// output at any threshold. See
    /// [`Job::with_spill_threshold`](crate::engine::Job::with_spill_threshold)
    /// and the [`crate::spill`] module for the mechanism.
    pub spill_threshold: Option<usize>,
    /// Per-task fault-tolerance policy (attempts per task, straggler
    /// deadline) applied to every workflow this runtime hands out. The
    /// default is [`FaultPolicy::fail_fast`]: the first task panic
    /// ends the resolve with a typed error — task panics never unwind
    /// out of a resolve in any mode, and a failed resolve leaves the
    /// runtime fully usable. See [`crate::fault`].
    pub fault_policy: FaultPolicy,
    /// Admission policy of the pool's operation-level dispatcher: the
    /// order in which ready task batches of concurrent workflows are
    /// claimed by free slots. [`SchedulingPolicy::Fifo`] (the default)
    /// is strict arrival order; `FairShare` favors the tenant with the
    /// least inflight work; `ShortestRemainingWork` favors the batch
    /// with the least estimated remaining comparison pairs. Purely
    /// operational — output is byte-identical under every policy.
    pub scheduling_policy: SchedulingPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            parallelism: default_parallelism(),
            reduce_tasks: 4,
            matcher_cache_capacity: None,
            count_only: false,
            spill_threshold: None,
            fault_policy: FaultPolicy::fail_fast(),
            scheduling_policy: SchedulingPolicy::Fifo,
        }
    }
}

impl RuntimeConfig {
    /// The defaults: all available cores, 4 reduce tasks, unbounded
    /// caches, full matching.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the worker-thread count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Overrides the default reduce-task count.
    pub fn with_reduce_tasks(mut self, reduce_tasks: usize) -> Self {
        self.reduce_tasks = reduce_tasks;
        self
    }

    /// Bounds the prepared-entity caches to at most `capacity`
    /// resident entities (LRU eviction); `None` restores the unbounded
    /// default.
    ///
    /// # Panics
    /// If `capacity` is `Some(n)` with `n < 2` — comparing a pair
    /// needs both sides resident.
    pub fn with_matcher_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        assert!(
            capacity.is_none_or(|n| n >= 2),
            "a bounded cache needs room for a pair"
        );
        self.matcher_cache_capacity = capacity;
        self
    }

    /// Switches comparison counting only (no similarity evaluation).
    pub fn with_count_only(mut self, count_only: bool) -> Self {
        self.count_only = count_only;
        self
    }

    /// Bounds each map task's open (unsorted, uncombined) working set
    /// to at most `threshold` records before it is sealed into
    /// immutable sorted runs; `None` restores the never-spill default.
    /// Job output is byte-identical at any threshold — only peak map
    /// memory and the number of runs the reduce-side merge consumes
    /// change.
    ///
    /// # Panics
    /// If `threshold` is `Some(0)` — a map task must be able to hold
    /// at least the record it is currently emitting.
    pub fn with_spill_threshold(mut self, threshold: Option<usize>) -> Self {
        assert!(
            threshold.is_none_or(|t| t >= 1),
            "spill threshold must be at least one record"
        );
        self.spill_threshold = threshold;
        self
    }

    /// Replaces the fault-tolerance policy (retry budget and straggler
    /// deadline) every workflow of this runtime runs under.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Replaces the pool's batch admission policy (see
    /// [`RuntimeConfig::scheduling_policy`]).
    pub fn with_scheduling_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.scheduling_policy = policy;
        self
    }
}

/// An owned, reusable engine handle: a persistent [`WorkerPool`] plus
/// the [`RuntimeConfig`] defaults, created once and shared across
/// back-to-back workflow executions.
///
/// # Concurrency contract
///
/// `Runtime` is `Send + Sync` (asserted at compile time): share one
/// instance behind an `Arc` (or a plain `&Runtime`) across as many
/// threads as you like and call [`Runtime::workflow`] — or the
/// facade's `Resolver::resolve()` — from all of them at once. Stages
/// of concurrent workflows interleave at *operation* granularity on
/// the shared pool: each stage's task batch is tagged with its
/// workflow's tenant and queued on the dispatcher's ready-queue,
/// where free slots claim tasks under the configured
/// [`RuntimeConfig::scheduling_policy`]. Guarantees that hold under
/// any interleaving:
///
/// * **Determinism** — every workflow's output is byte-identical to
///   running it alone, sequentially: task results land in
///   index-addressed slots, so scheduling order never reaches the
///   data plane.
/// * **Exact metrics** — [`crate::workflow::WorkflowMetrics`] roll up
///   per workflow; concurrent workflows never bleed counters into
///   each other.
/// * **Failure isolation** — one workflow's task panic (or injected
///   [`crate::fault::FaultPlan`]) fails *that* resolve with a typed
///   error; other tenants' dispatch continues unaffected, and the
///   runtime stays fully usable.
/// * **Backpressure** — [`Runtime::pool_stats`] snapshots queue
///   depth, busy slots, and per-tenant inflight work so callers can
///   shed or delay load before submitting.
///
/// ```
/// use mr_engine::runtime::{Runtime, RuntimeConfig};
///
/// let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(2));
/// // Every workflow handed out here executes on the same two threads:
/// let wf = runtime.workflow("first-run");
/// assert!(wf.pool().is_some());
/// assert_eq!(runtime.pool().threads(), 2);
/// ```
pub struct Runtime {
    config: RuntimeConfig,
    pool: Arc<WorkerPool>,
    /// Trace sink seeded into every workflow this runtime hands out;
    /// `None` (the default) runs everything untraced at zero cost.
    trace_sink: Option<Arc<dyn TraceSink>>,
}

// Manual: `dyn TraceSink` carries no `Debug` bound.
impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("config", &self.config)
            .field("pool", &self.pool)
            .field("traced", &self.trace_sink.is_some())
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Creates the runtime, spawning its worker pool — the only place
    /// threads are created; every workflow run on this runtime reuses
    /// them.
    ///
    /// # Panics
    /// If `config.parallelism` is zero.
    pub fn new(config: RuntimeConfig) -> Self {
        let pool = Arc::new(WorkerPool::with_policy(
            config.parallelism,
            config.scheduling_policy,
        ));
        Self {
            config,
            pool,
            trace_sink: None,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The persistent worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// A consistent snapshot of the pool's dispatch state: queued
    /// tasks, busy slots, registered batches, and inflight tasks per
    /// tenant. This is the backpressure hook for callers multiplexing
    /// many tenants onto one runtime — sample it before submitting
    /// and shed or delay load when the queue is deep or a tenant
    /// already dominates. Sampling takes the scheduler lock briefly;
    /// the snapshot is immediately stale but internally consistent.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Attaches a [`TraceSink`] seeded into every workflow this
    /// runtime hands out, so one sink observes all resolves executed
    /// on the runtime (see [`crate::trace`]). The default (no sink)
    /// runs untraced with zero overhead. The sink lives on the
    /// [`Runtime`] rather than the [`RuntimeConfig`] so the config
    /// stays `Copy`.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// The trace sink seeded into this runtime's workflows, if any.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace_sink.as_ref()
    }

    /// Starts a [`Workflow`] bound to this runtime's pool: its stages
    /// run on the runtime's threads, never spawning their own, under
    /// the runtime's [`RuntimeConfig::fault_policy`] (and trace sink,
    /// when one is attached).
    pub fn workflow(&self, name: impl Into<String>) -> Workflow {
        let wf = Workflow::on_pool(name, Arc::clone(&self.pool))
            .with_fault_policy(self.config.fault_policy);
        match &self.trace_sink {
            Some(sink) => wf.with_trace_sink(Arc::clone(sink)),
            None => wf,
        }
    }

    /// Like [`Runtime::workflow`], but caps this one workflow's stages
    /// at `max_parallelism` concurrent map/reduce tasks — still on the
    /// runtime's existing threads, never respawning the pool. Lets a
    /// single resolve run narrower than the runtime (e.g. to bound its
    /// peak memory) without paying thread churn.
    ///
    /// # Panics
    /// If `max_parallelism` is zero.
    pub fn workflow_with_parallelism(
        &self,
        name: impl Into<String>,
        max_parallelism: usize,
    ) -> Workflow {
        self.workflow(name).with_parallelism_cap(max_parallelism)
    }
}

/// Compile-time pin of the concurrency contract: a `Runtime` must
/// stay shareable across threads (see the type docs). A field that
/// breaks `Send + Sync` (e.g. an `Rc` or a bare `RefCell`) fails
/// compilation here, not in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Runtime>();
    assert_send_sync::<RuntimeConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{ClosureMapper, ClosureReducer};
    use crate::engine::Job;
    use crate::input::partition_evenly;
    use crate::mapper::MapContext;
    use crate::reducer::{Group, ReduceContext};

    fn count_job(
        r: usize,
    ) -> Job<ClosureMapper<(), u32, u32, u64, ()>, ClosureReducer<u32, u64, u32, u64>> {
        let mapper = ClosureMapper::new(|_: &(), v: &u32, ctx: &mut MapContext<u32, u64, ()>| {
            ctx.emit(v % 5, 1);
        });
        let reducer = ClosureReducer::new(
            |group: Group<'_, u32, u64>, ctx: &mut ReduceContext<u32, u64>| {
                ctx.emit(*group.key(), group.values().sum());
            },
        );
        Job::builder("count", mapper, reducer)
            .reduce_tasks(r)
            .parallelism(1)
            .build()
    }

    #[test]
    fn config_builders_compose() {
        let config = RuntimeConfig::new()
            .with_parallelism(3)
            .with_reduce_tasks(7)
            .with_matcher_cache_capacity(Some(16))
            .with_count_only(true)
            .with_spill_threshold(Some(64));
        assert_eq!(config.parallelism, 3);
        assert_eq!(config.reduce_tasks, 7);
        assert_eq!(config.matcher_cache_capacity, Some(16));
        assert!(config.count_only);
        assert_eq!(config.spill_threshold, Some(64));
        assert_eq!(
            config.with_spill_threshold(None).spill_threshold,
            None,
            "None must restore the never-spill default"
        );
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_spill_threshold_config_rejected() {
        let _ = RuntimeConfig::new().with_spill_threshold(Some(0));
    }

    #[test]
    #[should_panic(expected = "room for a pair")]
    fn tiny_cache_capacity_rejected() {
        let _ = RuntimeConfig::new().with_matcher_cache_capacity(Some(1));
    }

    #[test]
    fn consecutive_workflows_share_one_pool() {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(2));
        let input = partition_evenly((0..40u32).map(|v| ((), v)).collect(), 4);
        let mut reference: Option<Vec<Vec<(u32, u64)>>> = None;
        for round in 0..3 {
            let mut wf = runtime.workflow(format!("round-{round}"));
            let out = wf.chained_stage(&count_job(3), input.clone()).unwrap();
            match &reference {
                None => reference = Some(out.reduce_outputs),
                Some(r) => assert_eq!(r, &out.reduce_outputs, "round {round} drifted"),
            }
            assert_eq!(wf.finish().num_stages(), 1);
            assert_eq!(
                runtime.pool().threads_spawned(),
                2,
                "round {round} must not spawn threads"
            );
        }
        assert!(runtime.pool().tasks_executed() > 0);
    }

    #[test]
    fn per_workflow_parallelism_cap_reuses_the_pool() {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(3));
        let input = partition_evenly((0..40u32).map(|v| ((), v)).collect(), 4);
        let mut wf = runtime.workflow("wide");
        let expected = wf
            .chained_stage(&count_job(3), input.clone())
            .unwrap()
            .reduce_outputs;
        for cap in [1usize, 2, 8] {
            let mut narrow = runtime.workflow_with_parallelism(format!("cap-{cap}"), cap);
            assert_eq!(narrow.parallelism_cap(), Some(cap));
            let out = narrow.chained_stage(&count_job(3), input.clone()).unwrap();
            assert_eq!(out.reduce_outputs, expected, "cap {cap} drifted");
            assert_eq!(
                runtime.pool().threads_spawned(),
                3,
                "cap {cap} must not respawn the pool"
            );
        }
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_runtime_rejected() {
        let _ = Runtime::new(RuntimeConfig::new().with_parallelism(0));
    }

    #[test]
    fn scheduling_policy_reaches_the_pool() {
        assert_eq!(
            RuntimeConfig::new().scheduling_policy,
            SchedulingPolicy::Fifo
        );
        let runtime = Runtime::new(
            RuntimeConfig::new()
                .with_parallelism(2)
                .with_scheduling_policy(SchedulingPolicy::FairShare),
        );
        assert_eq!(
            runtime.pool().scheduling_policy(),
            SchedulingPolicy::FairShare
        );
    }

    #[test]
    fn pool_stats_snapshot_is_idle_between_runs_and_live_during_them() {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(2));
        assert_eq!(runtime.pool_stats(), PoolStats::default());
        let input = partition_evenly((0..40u32).map(|v| ((), v)).collect(), 4);
        let mut wf = runtime.workflow("stats").with_tenant("tenant-x");
        wf.chained_stage(&count_job(3), input).unwrap();
        // All batches drained: the snapshot must be empty again, with
        // no lingering per-tenant inflight entries.
        let after = runtime.pool_stats();
        assert_eq!(after.queue_depth, 0);
        assert_eq!(after.busy_slots, 0);
        assert_eq!(after.active_batches, 0);
        assert!(after.per_tenant_inflight.is_empty());
    }
}
