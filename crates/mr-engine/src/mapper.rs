//! The map side of the programming model.

use crate::counters::{self, CounterSet};

/// Information made available to a map task at `setup` time.
///
/// The partition index (`task_index`) is the crucial piece for the
/// ICDE-2012 algorithms: both BlockSplit and PairRange key their entity
/// redistribution off the input partition a map task is reading
/// (Algorithms 1–3 all begin with `map_configure(m, r, partitionIndex)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapTaskInfo {
    /// Index of this map task == index of the input partition it reads.
    pub task_index: usize,
    /// Total number of map tasks `m` in the job.
    pub num_map_tasks: usize,
    /// Total number of reduce tasks `r` in the job.
    pub num_reduce_tasks: usize,
}

/// Output collector handed to [`Mapper::map`].
///
/// Collects intermediate key-value pairs, optional side-output records
/// (Algorithm 3's `additionalOutput` to the distributed file system)
/// and named counters.
#[derive(Debug)]
pub struct MapContext<KO, VO, S> {
    pub(crate) info: MapTaskInfo,
    pub(crate) out: Vec<(KO, VO)>,
    pub(crate) side: Vec<S>,
    pub(crate) counters: CounterSet,
    /// Total pairs emitted over the task's lifetime. Tracked
    /// separately from `out.len()` because the engine drains `out`
    /// into the map-side spiller between records.
    pub(crate) emitted: usize,
}

impl<KO, VO, S> MapContext<KO, VO, S> {
    pub(crate) fn new(info: MapTaskInfo) -> Self {
        Self {
            info,
            out: Vec::new(),
            side: Vec::new(),
            counters: CounterSet::new(),
            emitted: 0,
        }
    }

    /// A standalone context for unit-testing mappers outside a job.
    pub fn for_testing(info: MapTaskInfo) -> Self {
        Self::new(info)
    }

    /// Task info (partition index, `m`, `r`).
    pub fn info(&self) -> MapTaskInfo {
        self.info
    }

    /// Pairs emitted and not yet consumed by the engine (read access
    /// for tests of custom mappers; inside a running job the engine
    /// drains this buffer into the map-side spiller between records).
    pub fn output(&self) -> &[(KO, VO)] {
        &self.out
    }

    /// Side records written so far.
    pub fn side(&self) -> &[S] {
        &self.side
    }

    /// Counters recorded so far.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Emits an intermediate key-value pair into the shuffle.
    pub fn emit(&mut self, key: KO, value: VO) {
        self.out.push((key, value));
        self.emitted += 1;
    }

    /// Writes a record to this map task's *additional output* file.
    ///
    /// Side outputs are collected per map task and can be used as the
    /// (identically partitioned) input of a follow-up job — exactly how
    /// the BDM job hands the blocking-key-annotated entities `Π'_i` to
    /// the matching job in the paper's Figure 2.
    pub fn side_output(&mut self, record: S) {
        self.side.push(record);
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Total number of pairs emitted so far over the task's lifetime
    /// (useful for flow-control tests). Unlike [`MapContext::output`],
    /// this count is unaffected by the engine draining the buffer into
    /// the map-side spiller.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

/// A user-defined map function.
///
/// One clone of the mapper runs per map task; `setup` is called once
/// with the task info before any input record, mirroring Hadoop's
/// `Mapper.setup` / the paper's `map_configure(m, r, partitionIndex)`.
pub trait Mapper: Clone + Send + Sync {
    /// Input key type.
    type KIn: Clone + Send + Sync;
    /// Input value type.
    type VIn: Clone + Send + Sync;
    /// Intermediate (shuffle) key type.
    type KOut: Clone + Send + Sync;
    /// Intermediate (shuffle) value type.
    type VOut: Clone + Send + Sync;
    /// Side-output record type (use `()` when unused).
    type Side: Clone + Send + Sync;

    /// Called once per task before the first record.
    fn setup(&mut self, _info: &MapTaskInfo) {}

    /// Called for every input record of the task's partition.
    fn map(
        &mut self,
        key: &Self::KIn,
        value: &Self::VIn,
        ctx: &mut MapContext<Self::KOut, Self::VOut, Self::Side>,
    );

    /// Called once per task after the last record.
    fn finish(&mut self, _ctx: &mut MapContext<Self::KOut, Self::VOut, Self::Side>) {}
}

/// Drives a single map task over its input partition, draining every
/// emitted pair into `sink` as it appears — after each `map` call and
/// after `finish` — so the engine's spiller sees records in emission
/// order without the context ever accumulating the full output.
/// Returns the drained context (side outputs, counters, emission
/// total); `sink` errors abort the task.
pub(crate) fn run_map_task_spilling<M: Mapper, E>(
    prototype: &M,
    info: MapTaskInfo,
    partition: &[(M::KIn, M::VIn)],
    mut sink: impl FnMut(M::KOut, M::VOut) -> Result<(), E>,
) -> Result<MapContext<M::KOut, M::VOut, M::Side>, E> {
    let mut mapper = prototype.clone();
    let mut ctx = MapContext::new(info);
    mapper.setup(&info);
    for (k, v) in partition {
        mapper.map(k, v, &mut ctx);
        ctx.counters.inc(counters::MAP_INPUT_RECORDS);
        for (k, v) in ctx.out.drain(..) {
            sink(k, v)?;
        }
    }
    mapper.finish(&mut ctx);
    for (k, v) in ctx.out.drain(..) {
        sink(k, v)?;
    }
    ctx.counters
        .add(counters::MAP_SIDE_OUTPUT_RECORDS, ctx.side.len() as u64);
    Ok(ctx)
}

/// Drives a single map task over its input partition and returns the
/// filled (undrained) context. White-box-test twin of
/// [`run_map_task_spilling`] — the engine itself streams through the
/// spilling variant.
#[cfg(test)]
pub(crate) fn run_map_task<M: Mapper>(
    prototype: &M,
    info: MapTaskInfo,
    partition: &[(M::KIn, M::VIn)],
) -> MapContext<M::KOut, M::VOut, M::Side> {
    let mut mapper = prototype.clone();
    let mut ctx = MapContext::new(info);
    mapper.setup(&info);
    for (k, v) in partition {
        mapper.map(k, v, &mut ctx);
        ctx.counters.inc(counters::MAP_INPUT_RECORDS);
    }
    mapper.finish(&mut ctx);
    ctx.counters
        .add(counters::MAP_SIDE_OUTPUT_RECORDS, ctx.side.len() as u64);
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::ClosureMapper;

    #[test]
    fn map_task_visits_every_record_in_order() {
        let mapper = ClosureMapper::new(|k: &u32, v: &u32, ctx: &mut MapContext<u32, u32, ()>| {
            ctx.emit(*k, *v * 10);
        });
        let info = MapTaskInfo {
            task_index: 0,
            num_map_tasks: 1,
            num_reduce_tasks: 1,
        };
        let part = vec![(1u32, 1u32), (2, 2), (3, 3)];
        let ctx = run_map_task(&mapper, info, &part);
        assert_eq!(ctx.out, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(ctx.counters.get(counters::MAP_INPUT_RECORDS), 3);
    }

    #[test]
    fn side_output_is_collected_and_counted() {
        let mapper = ClosureMapper::new(
            |_k: &u32, v: &u32, ctx: &mut MapContext<u32, u32, String>| {
                ctx.side_output(format!("saw {v}"));
            },
        );
        let info = MapTaskInfo {
            task_index: 3,
            num_map_tasks: 4,
            num_reduce_tasks: 2,
        };
        let ctx = run_map_task(&mapper, info, &[(0u32, 7u32), (0, 8)]);
        assert_eq!(ctx.side, vec!["saw 7".to_string(), "saw 8".to_string()]);
        assert_eq!(ctx.counters.get(counters::MAP_SIDE_OUTPUT_RECORDS), 2);
        assert_eq!(ctx.info().task_index, 3);
    }

    #[test]
    fn spilling_driver_drains_in_emission_order_and_keeps_the_total() {
        let mapper = ClosureMapper::new(|k: &u32, v: &u32, ctx: &mut MapContext<u32, u32, ()>| {
            ctx.emit(*k, *v);
            ctx.emit(*k, v * 10);
        });
        let info = MapTaskInfo {
            task_index: 0,
            num_map_tasks: 1,
            num_reduce_tasks: 1,
        };
        let part = vec![(1u32, 1u32), (2, 2)];
        let mut seen = Vec::new();
        let ctx = run_map_task_spilling(&mapper, info, &part, |k, v| {
            seen.push((k, v));
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(seen, vec![(1, 1), (1, 10), (2, 2), (2, 20)]);
        assert!(ctx.output().is_empty(), "driver leaves the buffer drained");
        assert_eq!(ctx.emitted(), 4, "emission total survives the drain");
        assert_eq!(ctx.counters.get(counters::MAP_INPUT_RECORDS), 2);
    }

    #[test]
    fn custom_counters_accumulate() {
        let mapper = ClosureMapper::new(|_: &(), _: &u8, ctx: &mut MapContext<u8, u8, ()>| {
            ctx.add_counter("seen", 2);
        });
        let info = MapTaskInfo {
            task_index: 0,
            num_map_tasks: 1,
            num_reduce_tasks: 1,
        };
        let ctx = run_map_task(&mapper, info, &[((), 1u8), ((), 2)]);
        assert_eq!(ctx.counters.get("seen"), 4);
    }
}
