//! Structured execution tracing: an event stream from the engine's hot
//! path, pluggable sinks, and a post-run analyzer.
//!
//! [`JobMetrics`](crate::metrics::JobMetrics) answers *how much* — how
//! many retries, how many spilled runs, how large the biggest reduce
//! group was. It cannot answer *when* or *where*: which pool slot ran
//! the straggling reduce task, how long an attempt sat queued behind
//! the skewed one, whether the speculative twin actually saved wall
//! time. This module adds that dimension as a stream of
//! [`TraceEvent`]s emitted while a job runs, delivered to a
//! [`TraceSink`] the caller attaches via
//! [`Job::with_trace_sink`](crate::engine::Job::with_trace_sink),
//! [`Workflow::with_trace_sink`](crate::workflow::Workflow::with_trace_sink),
//! or [`Runtime::with_trace_sink`](crate::runtime::Runtime::with_trace_sink).
//!
//! With no sink attached the engine constructs **no events at all**:
//! every instrumentation point is guarded by a single
//! `Option<Arc<_>>` check, so the fault-free hot path stays within its
//! existing noise band.
//!
//! # Event schema
//!
//! Every event carries `at` (a monotonic offset from the run's epoch)
//! and, where a worker slot is attributable, the pool slot index. The
//! payload splits into two families:
//!
//! * **Logical lifecycle events** — job/stage start+finish, task
//!   *attempt* start/finish/fail/retry (coordinates `(job, kind,
//!   task, attempt)` match [`TaskError`](crate::fault::TaskError)),
//!   spill-run sealed, shuffle transpose. Stripped of timestamps and
//!   slot ids (see [`TraceEventData::logical_line`]), the multiset of
//!   these events is **byte-identical across parallelism** for any
//!   deterministic (deadline-free) fault plan, and each category's
//!   count agrees exactly with the corresponding `JobMetrics` gauge.
//!   That makes the trace a correctness probe, not just a log.
//! * **Operational events** — worker slot acquired/released, queue
//!   depth at enqueue, per-attempt queue wait, speculative
//!   launch/win/loss. These are genuinely timing- and
//!   parallelism-dependent and are excluded from the logical view.
//!
//! # Attaching a sink and reading a report
//!
//! ```
//! use std::sync::Arc;
//! use mr_engine::prelude::*;
//!
//! let recorder = Arc::new(TraceRecorder::new());
//! let mapper = ClosureMapper::new(|_k: &(), v: &u32, ctx: &mut MapContext<u32, u64, ()>| {
//!     ctx.emit(v % 3, 1);
//! });
//! let reducer = ClosureReducer::new(|g: Group<'_, u32, u64>, ctx: &mut ReduceContext<u32, u64>| {
//!     ctx.emit(*g.key(), g.values().sum());
//! });
//! let out = Job::builder("demo", mapper, reducer)
//!     .reduce_tasks(2)
//!     .parallelism(2)
//!     .build()
//!     .with_trace_sink(recorder.clone())
//!     .run(partition_evenly((0..12u32).map(|v| ((), v)).collect(), 3))
//!     .unwrap();
//!
//! // One finished attempt per map and reduce task, matching the metrics:
//! let tasks = out.metrics.map_tasks.len() + out.metrics.reduce_tasks.len();
//! assert_eq!(recorder.count("attempt_finished"), tasks as u64);
//!
//! // The analyzer turns the raw stream into timelines and percentiles:
//! let report = TraceReport::from_events(&recorder.events());
//! assert_eq!(report.count("job_finished"), 1);
//! println!("{}", report.to_text());
//! ```

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::fault::{lock_unpoisoned, FaultKind};
use crate::json::Json;

/// One execution event: a monotonic timestamp (offset from the run
/// epoch), the worker slot it is attributable to (if any), and the
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic offset from the run's epoch (workflow start, or job
    /// start for bare [`Job::run`](crate::engine::Job::run)).
    pub at: Duration,
    /// Pool worker-slot index, when the event happened on (or is
    /// attributable to) a specific slot. Coordinator-side events and
    /// inline (parallelism 1) execution report `None` or slot 0
    /// respectively.
    pub slot: Option<usize>,
    /// What happened.
    pub data: TraceEventData,
}

impl TraceEvent {
    /// Renders the event as one JSON object (one JSONL line for
    /// [`JsonlSink`]). Durations are exported in fractional
    /// milliseconds.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("event".into(), Json::str(self.data.category())),
            ("at_ms".into(), dur_ms(self.at)),
            (
                "slot".into(),
                match self.slot {
                    Some(s) => Json::Num(s as f64),
                    None => Json::Null,
                },
            ),
        ];
        self.data.push_json_members(&mut members);
        Json::Obj(members)
    }
}

/// The payload of a [`TraceEvent`]: what happened, with the
/// coordinates needed to correlate it back to tasks and metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventData {
    /// A job began executing (after input validation).
    JobStarted {
        /// Job name.
        job: String,
        /// Number of map tasks (input partitions).
        map_tasks: usize,
        /// Number of reduce tasks.
        reduce_tasks: usize,
    },
    /// A job finished successfully.
    JobFinished {
        /// Job name.
        job: String,
        /// The job's total wall time (the critical path).
        wall: Duration,
    },
    /// A workflow stage began.
    StageStarted {
        /// Workflow name.
        workflow: String,
        /// Job name of the stage.
        job: String,
        /// Zero-based stage index within the workflow.
        stage: usize,
    },
    /// A workflow stage finished.
    StageFinished {
        /// Workflow name.
        workflow: String,
        /// Job name of the stage.
        job: String,
        /// Zero-based stage index within the workflow.
        stage: usize,
        /// Stage wall time.
        wall: Duration,
    },
    /// A task attempt began executing its body.
    AttemptStarted {
        /// Job name.
        job: String,
        /// Phase of the failed work, matching [`FaultKind`].
        kind: FaultKind,
        /// Task index within the phase.
        task: usize,
        /// One-based attempt number.
        attempt: u32,
    },
    /// A task attempt completed successfully.
    AttemptFinished {
        /// Job name.
        job: String,
        /// Phase.
        kind: FaultKind,
        /// Task index.
        task: usize,
        /// One-based attempt number.
        attempt: u32,
        /// Attempt body wall time (excludes queue wait).
        wall: Duration,
    },
    /// A task attempt failed (panicked or returned an error).
    AttemptFailed {
        /// Job name.
        job: String,
        /// Phase.
        kind: FaultKind,
        /// Task index.
        task: usize,
        /// One-based attempt number.
        attempt: u32,
        /// The failure description (panic message or error text).
        message: String,
    },
    /// A failed attempt is being retried.
    AttemptRetried {
        /// Job name.
        job: String,
        /// Phase.
        kind: FaultKind,
        /// Task index.
        task: usize,
        /// The attempt number the retry will run as.
        next_attempt: u32,
    },
    /// The straggler watchdog launched a speculative twin.
    SpeculativeLaunched {
        /// Job name.
        job: String,
        /// Phase.
        kind: FaultKind,
        /// Task index.
        task: usize,
    },
    /// A task copy finished first and its result was installed.
    SpeculativeWon {
        /// Job name.
        job: String,
        /// Phase.
        kind: FaultKind,
        /// Task index.
        task: usize,
        /// `true` when the speculative twin (not the original copy)
        /// won the race.
        twin: bool,
    },
    /// A task copy finished after its sibling already won.
    SpeculativeLost {
        /// Job name.
        job: String,
        /// Phase.
        kind: FaultKind,
        /// Task index.
        task: usize,
        /// `true` when the losing copy was the speculative twin.
        twin: bool,
    },
    /// A map task sealed one open bucket into an immutable sorted run.
    SpillRunSealed {
        /// Job name.
        job: String,
        /// Map task index.
        task: usize,
        /// Reduce task (bucket) the run belongs to.
        reduce_task: usize,
        /// Records in the sealed run.
        records: usize,
    },
    /// The coordinator finished transposing map-side runs to reduce
    /// tasks.
    ShuffleCompleted {
        /// Job name.
        job: String,
        /// Total sorted runs handed to reduce tasks.
        runs: usize,
        /// Transpose wall time (matches `JobMetrics::shuffle_wall`).
        wall: Duration,
    },
    /// A pool worker slot picked up work for this dispatch.
    SlotAcquired {
        /// Tenant of the batch the slot will work on; `None` on the
        /// transient (scoped-thread) pool, which has no scheduler.
        tenant: Option<String>,
    },
    /// A pool worker slot finished its share of a dispatch.
    SlotReleased,
    /// A tagged stage batch was registered on the pool's shared
    /// ready-queue (not yet running).
    StageReady {
        /// Tenant that submitted the batch.
        tenant: String,
        /// Workflow name.
        workflow: String,
        /// Zero-based stage index within the workflow.
        stage: usize,
        /// Tasks in the batch.
        tasks: usize,
    },
    /// The scheduler admitted a registered stage batch: its first task
    /// was claimed by a worker (or by dispatcher caller-help).
    StageAdmitted {
        /// Tenant that submitted the batch.
        tenant: String,
        /// Workflow name.
        workflow: String,
        /// Zero-based stage index within the workflow.
        stage: usize,
    },
    /// A batch of tasks was pushed onto the pool queue.
    TasksEnqueued {
        /// Tasks in this dispatch.
        tasks: usize,
        /// Queue depth right after the push (unclaimed tasks across
        /// all registered batches, including these).
        queue_depth: usize,
    },
    /// A task attempt was picked up; `wait` is enqueue → start.
    QueueWaited {
        /// Job name.
        job: String,
        /// Phase.
        kind: FaultKind,
        /// Task index.
        task: usize,
        /// Scheduling delay: time between dispatch enqueue and the
        /// task body starting on a worker.
        wait: Duration,
    },
}

impl TraceEventData {
    /// Stable category name: the `event` member of the JSONL encoding
    /// and the key of [`CountingSink`] / [`TraceReport::count`].
    pub fn category(&self) -> &'static str {
        match self {
            TraceEventData::JobStarted { .. } => "job_started",
            TraceEventData::JobFinished { .. } => "job_finished",
            TraceEventData::StageStarted { .. } => "stage_started",
            TraceEventData::StageFinished { .. } => "stage_finished",
            TraceEventData::AttemptStarted { .. } => "attempt_started",
            TraceEventData::AttemptFinished { .. } => "attempt_finished",
            TraceEventData::AttemptFailed { .. } => "attempt_failed",
            TraceEventData::AttemptRetried { .. } => "attempt_retried",
            TraceEventData::SpeculativeLaunched { .. } => "speculative_launched",
            TraceEventData::SpeculativeWon { .. } => "speculative_won",
            TraceEventData::SpeculativeLost { .. } => "speculative_lost",
            TraceEventData::SpillRunSealed { .. } => "spill_run_sealed",
            TraceEventData::ShuffleCompleted { .. } => "shuffle_completed",
            TraceEventData::SlotAcquired { .. } => "slot_acquired",
            TraceEventData::SlotReleased => "slot_released",
            TraceEventData::StageReady { .. } => "stage_ready",
            TraceEventData::StageAdmitted { .. } => "stage_admitted",
            TraceEventData::TasksEnqueued { .. } => "tasks_enqueued",
            TraceEventData::QueueWaited { .. } => "queue_waited",
        }
    }

    /// The event's parallelism-invariant rendering: deterministic
    /// coordinates only, timestamps/durations/slots stripped. Returns
    /// `None` for operational events (queue, slot, speculation), whose
    /// very occurrence depends on timing. For a deterministic
    /// (deadline-free) fault plan, the sorted multiset of these lines
    /// is byte-identical at any parallelism.
    pub fn logical_line(&self) -> Option<String> {
        match self {
            TraceEventData::JobStarted {
                job,
                map_tasks,
                reduce_tasks,
            } => Some(format!(
                "job_started job={job} map_tasks={map_tasks} reduce_tasks={reduce_tasks}"
            )),
            TraceEventData::JobFinished { job, .. } => Some(format!("job_finished job={job}")),
            TraceEventData::StageStarted {
                workflow,
                job,
                stage,
            } => Some(format!(
                "stage_started workflow={workflow} job={job} stage={stage}"
            )),
            TraceEventData::StageFinished {
                workflow,
                job,
                stage,
                ..
            } => Some(format!(
                "stage_finished workflow={workflow} job={job} stage={stage}"
            )),
            TraceEventData::AttemptStarted {
                job,
                kind,
                task,
                attempt,
            } => Some(format!(
                "attempt_started job={job} kind={kind} task={task} attempt={attempt}"
            )),
            TraceEventData::AttemptFinished {
                job,
                kind,
                task,
                attempt,
                ..
            } => Some(format!(
                "attempt_finished job={job} kind={kind} task={task} attempt={attempt}"
            )),
            TraceEventData::AttemptFailed {
                job,
                kind,
                task,
                attempt,
                message,
            } => Some(format!(
                "attempt_failed job={job} kind={kind} task={task} attempt={attempt} message={message}"
            )),
            TraceEventData::AttemptRetried {
                job,
                kind,
                task,
                next_attempt,
            } => Some(format!(
                "attempt_retried job={job} kind={kind} task={task} next_attempt={next_attempt}"
            )),
            TraceEventData::SpillRunSealed {
                job,
                task,
                reduce_task,
                records,
            } => Some(format!(
                "spill_run_sealed job={job} task={task} reduce_task={reduce_task} records={records}"
            )),
            TraceEventData::ShuffleCompleted { job, runs, .. } => {
                Some(format!("shuffle_completed job={job} runs={runs}"))
            }
            // Scheduler events (StageReady/StageAdmitted/Slot*) are
            // operational: whether a stage batch is even registered
            // depends on the inline fast path, and admission order on
            // tenant timing — so none of them may enter the logical
            // stream the parallelism-invariance tests pin.
            TraceEventData::SpeculativeLaunched { .. }
            | TraceEventData::SpeculativeWon { .. }
            | TraceEventData::SpeculativeLost { .. }
            | TraceEventData::SlotAcquired { .. }
            | TraceEventData::SlotReleased
            | TraceEventData::StageReady { .. }
            | TraceEventData::StageAdmitted { .. }
            | TraceEventData::TasksEnqueued { .. }
            | TraceEventData::QueueWaited { .. } => None,
        }
    }

    fn push_json_members(&self, members: &mut Vec<(String, Json)>) {
        let mut push = |k: &str, v: Json| members.push((k.to_string(), v));
        match self {
            TraceEventData::JobStarted {
                job,
                map_tasks,
                reduce_tasks,
            } => {
                push("job", Json::str(job));
                push("map_tasks", Json::Num(*map_tasks as f64));
                push("reduce_tasks", Json::Num(*reduce_tasks as f64));
            }
            TraceEventData::JobFinished { job, wall } => {
                push("job", Json::str(job));
                push("wall_ms", dur_ms(*wall));
            }
            TraceEventData::StageStarted {
                workflow,
                job,
                stage,
            } => {
                push("workflow", Json::str(workflow));
                push("job", Json::str(job));
                push("stage", Json::Num(*stage as f64));
            }
            TraceEventData::StageFinished {
                workflow,
                job,
                stage,
                wall,
            } => {
                push("workflow", Json::str(workflow));
                push("job", Json::str(job));
                push("stage", Json::Num(*stage as f64));
                push("wall_ms", dur_ms(*wall));
            }
            TraceEventData::AttemptStarted {
                job,
                kind,
                task,
                attempt,
            } => {
                push("job", Json::str(job));
                push("kind", Json::str(kind.to_string()));
                push("task", Json::Num(*task as f64));
                push("attempt", Json::Num(*attempt as f64));
            }
            TraceEventData::AttemptFinished {
                job,
                kind,
                task,
                attempt,
                wall,
            } => {
                push("job", Json::str(job));
                push("kind", Json::str(kind.to_string()));
                push("task", Json::Num(*task as f64));
                push("attempt", Json::Num(*attempt as f64));
                push("wall_ms", dur_ms(*wall));
            }
            TraceEventData::AttemptFailed {
                job,
                kind,
                task,
                attempt,
                message,
            } => {
                push("job", Json::str(job));
                push("kind", Json::str(kind.to_string()));
                push("task", Json::Num(*task as f64));
                push("attempt", Json::Num(*attempt as f64));
                push("message", Json::str(message));
            }
            TraceEventData::AttemptRetried {
                job,
                kind,
                task,
                next_attempt,
            } => {
                push("job", Json::str(job));
                push("kind", Json::str(kind.to_string()));
                push("task", Json::Num(*task as f64));
                push("next_attempt", Json::Num(*next_attempt as f64));
            }
            TraceEventData::SpeculativeLaunched { job, kind, task } => {
                push("job", Json::str(job));
                push("kind", Json::str(kind.to_string()));
                push("task", Json::Num(*task as f64));
            }
            TraceEventData::SpeculativeWon {
                job,
                kind,
                task,
                twin,
            }
            | TraceEventData::SpeculativeLost {
                job,
                kind,
                task,
                twin,
            } => {
                push("job", Json::str(job));
                push("kind", Json::str(kind.to_string()));
                push("task", Json::Num(*task as f64));
                push("twin", Json::Bool(*twin));
            }
            TraceEventData::SpillRunSealed {
                job,
                task,
                reduce_task,
                records,
            } => {
                push("job", Json::str(job));
                push("task", Json::Num(*task as f64));
                push("reduce_task", Json::Num(*reduce_task as f64));
                push("records", Json::Num(*records as f64));
            }
            TraceEventData::ShuffleCompleted { job, runs, wall } => {
                push("job", Json::str(job));
                push("runs", Json::Num(*runs as f64));
                push("wall_ms", dur_ms(*wall));
            }
            TraceEventData::SlotAcquired { tenant } => {
                push(
                    "tenant",
                    match tenant {
                        Some(t) => Json::str(t),
                        None => Json::Null,
                    },
                );
            }
            TraceEventData::SlotReleased => {}
            TraceEventData::StageReady {
                tenant,
                workflow,
                stage,
                tasks,
            } => {
                push("tenant", Json::str(tenant));
                push("workflow", Json::str(workflow));
                push("stage", Json::Num(*stage as f64));
                push("tasks", Json::Num(*tasks as f64));
            }
            TraceEventData::StageAdmitted {
                tenant,
                workflow,
                stage,
            } => {
                push("tenant", Json::str(tenant));
                push("workflow", Json::str(workflow));
                push("stage", Json::Num(*stage as f64));
            }
            TraceEventData::TasksEnqueued { tasks, queue_depth } => {
                push("tasks", Json::Num(*tasks as f64));
                push("queue_depth", Json::Num(*queue_depth as f64));
            }
            TraceEventData::QueueWaited {
                job,
                kind,
                task,
                wait,
            } => {
                push("job", Json::str(job));
                push("kind", Json::str(kind.to_string()));
                push("task", Json::Num(*task as f64));
                push("wait_ms", dur_ms(*wait));
            }
        }
    }
}

fn dur_ms(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e3)
}

/// Receives trace events as they are emitted. Implementations must be
/// cheap and thread-safe — `record` is called from worker threads
/// while tasks run.
pub trait TraceSink: Send + Sync {
    /// Delivers one event. Events from concurrent workers arrive in
    /// arbitrary interleaving; `at` timestamps give the true order.
    fn record(&self, event: &TraceEvent);
}

/// The engine-internal handle every instrumentation point goes
/// through. `Tracer::off()` is the default: a `None` inner, so the
/// hot-path cost of disabled tracing is one branch — no allocation,
/// no clock read.
#[derive(Clone)]
pub(crate) struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
}

impl Tracer {
    /// The disabled tracer: every `emit` is a single branch.
    pub(crate) fn off() -> Self {
        Self { inner: None }
    }

    /// A tracer whose timestamps are offsets from "now".
    pub(crate) fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self::with_epoch(sink, Instant::now())
    }

    /// A tracer with an explicit epoch — workflows pass their start
    /// instant so stage and task events share one timeline.
    pub(crate) fn with_epoch(sink: Arc<dyn TraceSink>, epoch: Instant) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner { sink, epoch })),
        }
    }

    /// Whether a sink is attached. Guard any event construction that
    /// allocates with this.
    pub(crate) fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits one event (no-op when off). Prefer [`Tracer::emit_with`]
    /// when building the payload allocates.
    pub(crate) fn emit(&self, slot: Option<usize>, data: TraceEventData) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&TraceEvent {
                at: inner.epoch.elapsed(),
                slot,
                data,
            });
        }
    }

    /// Emits one event, constructing the payload only when a sink is
    /// attached — the form instrumentation points in per-record or
    /// per-task loops use.
    pub(crate) fn emit_with(&self, slot: Option<usize>, data: impl FnOnce() -> TraceEventData) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&TraceEvent {
                at: inner.epoch.elapsed(),
                slot,
                data: data(),
            });
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("on", &self.is_on()).finish()
    }
}

/// Per-task execution context threaded from the pool dispatch into the
/// fault-tolerant task runner: which slot the task landed on and how
/// long it sat queued before starting.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TaskCtx {
    /// Worker-slot index executing the task (0 on inline paths).
    pub(crate) slot: usize,
    /// Enqueue → start scheduling delay (zero on inline paths).
    pub(crate) queue_wait: Duration,
}

/// Trace context handed to a [`MapSpiller`](crate::spill::MapSpiller)
/// so threshold-triggered seals can emit [`SpillRunSealed`] events.
/// Built only when the tracer is on, so the off path never clones the
/// job name per task.
///
/// [`SpillRunSealed`]: TraceEventData::SpillRunSealed
#[derive(Debug, Clone)]
pub(crate) struct SpillTrace {
    pub(crate) tracer: Tracer,
    pub(crate) job: String,
    pub(crate) task: usize,
    pub(crate) slot: Option<usize>,
}

/// An in-memory sink: records every event for post-run queries. The
/// sink tests and the [`TraceReport`] analyzer are built on.
#[derive(Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// An empty recorder. Wrap it in an `Arc` to attach it.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all recorded events, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.events).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events (reuse one recorder across runs).
    pub fn clear(&self) {
        lock_unpoisoned(&self.events).clear();
    }

    /// Number of recorded events in the given category (see
    /// [`TraceEventData::category`]).
    pub fn count(&self, category: &str) -> u64 {
        lock_unpoisoned(&self.events)
            .iter()
            .filter(|e| e.data.category() == category)
            .count() as u64
    }

    /// The canonical logical view: every event's
    /// [`TraceEventData::logical_line`], sorted. Two runs of the same
    /// deterministic job at different parallelism produce byte-equal
    /// vectors.
    pub fn logical_events(&self) -> Vec<String> {
        let mut lines: Vec<String> = lock_unpoisoned(&self.events)
            .iter()
            .filter_map(|e| e.data.logical_line())
            .collect();
        lines.sort_unstable();
        lines
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("events", &self.len())
            .finish()
    }
}

impl TraceSink for TraceRecorder {
    fn record(&self, event: &TraceEvent) {
        lock_unpoisoned(&self.events).push(event.clone());
    }
}

/// A sink that counts events per category without storing them —
/// constant memory no matter how long the run.
#[derive(Default)]
pub struct CountingSink {
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl CountingSink {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all per-category counts.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        lock_unpoisoned(&self.counts).clone()
    }

    /// Count for one category (0 if never seen).
    pub fn count(&self, category: &str) -> u64 {
        lock_unpoisoned(&self.counts)
            .get(category)
            .copied()
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for CountingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingSink")
            .field("counts", &self.counts())
            .finish()
    }
}

impl TraceSink for CountingSink {
    fn record(&self, event: &TraceEvent) {
        *lock_unpoisoned(&self.counts)
            .entry(event.data.category())
            .or_insert(0) += 1;
    }
}

/// A sink that writes one JSON object per event (JSONL) to any
/// writer, built on the dependency-free [`crate::json`] machinery.
/// Write errors are swallowed — tracing must never fail the job it
/// observes.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        Self {
            writer: Mutex::new(Box::new(writer)),
        }
    }

    /// Creates (truncates) `path` and buffers writes to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }

    /// Flushes buffered lines (also done on drop).
    pub fn flush(&self) -> std::io::Result<()> {
        lock_unpoisoned(&self.writer).flush()
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let mut writer = lock_unpoisoned(&self.writer);
        let _ = writeln!(writer, "{}", event.to_json());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = lock_unpoisoned(&self.writer).flush();
    }
}

/// Queue-wait distribution in fractional milliseconds (nearest-rank
/// percentiles over every recorded [`QueueWaited`] event).
///
/// [`QueueWaited`]: TraceEventData::QueueWaited
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueWaitStats {
    /// Number of waits observed.
    pub count: usize,
    /// Median wait.
    pub p50_ms: f64,
    /// 90th percentile wait.
    pub p90_ms: f64,
    /// 99th percentile wait.
    pub p99_ms: f64,
    /// Longest wait.
    pub max_ms: f64,
}

#[derive(Debug, Clone)]
struct Segment {
    start: Duration,
    end: Duration,
    label: String,
}

#[derive(Debug, Clone)]
struct JobSummary {
    job: String,
    map_tasks: usize,
    reduce_tasks: usize,
    wall: Option<Duration>,
    sum_of_walls: Duration,
    reduce_wall_ms: Vec<f64>,
}

/// One resolved speculation race: which copy won and how much wall it
/// saved (losing copy's finish minus the winner's).
#[derive(Debug, Clone)]
pub struct Speculation {
    /// Job name.
    pub job: String,
    /// Phase.
    pub kind: FaultKind,
    /// Task index.
    pub task: usize,
    /// `true` when the speculative twin won (the speculation paid
    /// off); `false` when the original finished first after all.
    pub twin_won: bool,
    /// Wall time saved versus waiting for the losing copy, when the
    /// loser's finish was observed.
    pub saved: Option<Duration>,
}

/// Per-tenant scheduler activity aggregated from the dispatcher's
/// decision-point events ([`StageReady`], [`StageAdmitted`], and
/// tenant-tagged [`SlotAcquired`]).
///
/// [`StageReady`]: TraceEventData::StageReady
/// [`StageAdmitted`]: TraceEventData::StageAdmitted
/// [`SlotAcquired`]: TraceEventData::SlotAcquired
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant name.
    pub tenant: String,
    /// Stage batches the tenant registered on the shared scheduler.
    pub stages_submitted: usize,
    /// Registered batches whose first task was claimed.
    pub stages_admitted: usize,
    /// Tasks across all registered batches.
    pub tasks_submitted: usize,
    /// Task claims executed under this tenant (slot acquisitions).
    pub tasks_dispatched: usize,
    /// Total ready→admitted wait across the tenant's stages — how
    /// long its batches sat behind other tenants' work.
    pub admission_wait: Duration,
}

/// Post-run analyzer over a recorded event stream: per-worker
/// timelines, per-stage critical path vs. sum-of-walls, reduce-load
/// skew, speculation attribution, queue-wait percentiles, and
/// per-tenant scheduler activity.
///
/// Build it from [`TraceRecorder::events`], then render with
/// [`TraceReport::to_text`] or export with [`TraceReport::to_json`].
#[derive(Debug, Clone)]
pub struct TraceReport {
    total: Duration,
    counts: BTreeMap<&'static str, u64>,
    lanes: BTreeMap<usize, Vec<Segment>>,
    jobs: Vec<JobSummary>,
    speculation: Vec<Speculation>,
    queue_waits_ms: Vec<f64>,
    tenants: Vec<TenantSummary>,
}

impl TraceReport {
    /// Analyzes a recorded stream. Order does not matter; everything
    /// is keyed on coordinates and `at` timestamps.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let total = events.iter().map(|e| e.at).max().unwrap_or(Duration::ZERO);
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut lanes: BTreeMap<usize, Vec<Segment>> = BTreeMap::new();
        let mut jobs: Vec<JobSummary> = Vec::new();
        let mut won: BTreeMap<(String, &'static str, usize), (bool, Duration)> = BTreeMap::new();
        let mut lost: BTreeMap<(String, &'static str, usize), Duration> = BTreeMap::new();
        let mut launched: Vec<(String, FaultKind, usize)> = Vec::new();
        let mut queue_waits_ms: Vec<f64> = Vec::new();
        let mut tenant_map: BTreeMap<String, TenantSummary> = BTreeMap::new();
        let mut stage_ready_at: BTreeMap<(String, String, usize), Duration> = BTreeMap::new();

        fn tenant_entry<'a>(
            map: &'a mut BTreeMap<String, TenantSummary>,
            tenant: &str,
        ) -> &'a mut TenantSummary {
            map.entry(tenant.to_string())
                .or_insert_with(|| TenantSummary {
                    tenant: tenant.to_string(),
                    stages_submitted: 0,
                    stages_admitted: 0,
                    tasks_submitted: 0,
                    tasks_dispatched: 0,
                    admission_wait: Duration::ZERO,
                })
        }

        fn kind_str(kind: FaultKind) -> &'static str {
            match kind {
                FaultKind::Map => "map",
                FaultKind::Sort => "sort",
                FaultKind::Reduce => "reduce",
            }
        }
        fn summary<'a>(jobs: &'a mut Vec<JobSummary>, job: &str) -> &'a mut JobSummary {
            if let Some(i) = jobs.iter().position(|s| s.job == job) {
                &mut jobs[i]
            } else {
                jobs.push(JobSummary {
                    job: job.to_string(),
                    map_tasks: 0,
                    reduce_tasks: 0,
                    wall: None,
                    sum_of_walls: Duration::ZERO,
                    reduce_wall_ms: Vec::new(),
                });
                jobs.last_mut().expect("just pushed")
            }
        }

        for event in events {
            *counts.entry(event.data.category()).or_insert(0) += 1;
            match &event.data {
                TraceEventData::JobStarted {
                    job,
                    map_tasks,
                    reduce_tasks,
                } => {
                    let s = summary(&mut jobs, job);
                    s.map_tasks = *map_tasks;
                    s.reduce_tasks = *reduce_tasks;
                }
                TraceEventData::JobFinished { job, wall } => {
                    summary(&mut jobs, job).wall = Some(*wall);
                }
                TraceEventData::AttemptFinished {
                    job,
                    kind,
                    task,
                    attempt,
                    wall,
                } => {
                    let s = summary(&mut jobs, job);
                    s.sum_of_walls += *wall;
                    if *kind == FaultKind::Reduce {
                        s.reduce_wall_ms.push(wall.as_secs_f64() * 1e3);
                    }
                    if let Some(slot) = event.slot {
                        lanes.entry(slot).or_default().push(Segment {
                            start: event.at.checked_sub(*wall).unwrap_or_default(),
                            end: event.at,
                            label: format!("{job}/{}/{task}#{attempt}", kind_str(*kind)),
                        });
                    }
                }
                TraceEventData::SpeculativeLaunched { job, kind, task } => {
                    launched.push((job.clone(), *kind, *task));
                }
                TraceEventData::SpeculativeWon {
                    job,
                    kind,
                    task,
                    twin,
                } => {
                    won.insert((job.clone(), kind_str(*kind), *task), (*twin, event.at));
                }
                TraceEventData::SpeculativeLost {
                    job, kind, task, ..
                } => {
                    lost.insert((job.clone(), kind_str(*kind), *task), event.at);
                }
                TraceEventData::QueueWaited { wait, .. } => {
                    queue_waits_ms.push(wait.as_secs_f64() * 1e3);
                }
                TraceEventData::StageReady {
                    tenant,
                    workflow,
                    stage,
                    tasks,
                } => {
                    let s = tenant_entry(&mut tenant_map, tenant);
                    s.stages_submitted += 1;
                    s.tasks_submitted += *tasks;
                    stage_ready_at
                        .entry((tenant.clone(), workflow.clone(), *stage))
                        .or_insert(event.at);
                }
                TraceEventData::StageAdmitted {
                    tenant,
                    workflow,
                    stage,
                } => {
                    let s = tenant_entry(&mut tenant_map, tenant);
                    s.stages_admitted += 1;
                    if let Some(ready) =
                        stage_ready_at.get(&(tenant.clone(), workflow.clone(), *stage))
                    {
                        s.admission_wait += event.at.checked_sub(*ready).unwrap_or_default();
                    }
                }
                TraceEventData::SlotAcquired {
                    tenant: Some(tenant),
                } => {
                    tenant_entry(&mut tenant_map, tenant).tasks_dispatched += 1;
                }
                _ => {}
            }
        }

        let mut speculation: Vec<Speculation> = Vec::new();
        for (job, kind, task) in launched {
            let key = (job.clone(), kind_str(kind), task);
            // `SpeculativeWon` is emitted only when the twin beats the
            // original (matching the `speculative_won` gauge), so a
            // launch with no Won event means the original won — still
            // one resolved race. Wall saved is attributable only when
            // the losing copy also ran to completion and reported in.
            let won_entry = won.get(&key);
            let saved = won_entry.and_then(|(_, won_at)| {
                lost.get(&key)
                    .map(|lost_at| lost_at.checked_sub(*won_at).unwrap_or_default())
            });
            speculation.push(Speculation {
                job,
                kind,
                task,
                twin_won: won_entry.is_some_and(|(twin, _)| *twin),
                saved,
            });
        }
        queue_waits_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite wait"));
        for lane in lanes.values_mut() {
            lane.sort_by_key(|s| s.start);
        }
        Self {
            total,
            counts,
            lanes,
            jobs,
            speculation,
            queue_waits_ms,
            tenants: tenant_map.into_values().collect(),
        }
    }

    /// Timestamp of the last event — the observed run length.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Per-category event counts.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Count for one category (0 if never seen).
    pub fn count(&self, category: &str) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Busy wall time per worker slot (sum of finished-attempt
    /// segments attributed to that slot).
    pub fn slot_busy(&self) -> BTreeMap<usize, Duration> {
        self.lanes
            .iter()
            .map(|(slot, segs)| {
                let busy = segs
                    .iter()
                    .map(|s| s.end.checked_sub(s.start).unwrap_or_default())
                    .sum();
                (*slot, busy)
            })
            .collect()
    }

    /// Utilization per worker slot: busy time divided by the observed
    /// run length, in `[0, 1]` (clamped — attempt walls measured
    /// inside the task can round above the outer span).
    pub fn utilization(&self) -> BTreeMap<usize, f64> {
        let total = self.total.as_secs_f64();
        self.slot_busy()
            .into_iter()
            .map(|(slot, busy)| {
                let frac = if total > 0.0 {
                    (busy.as_secs_f64() / total).min(1.0)
                } else {
                    0.0
                };
                (slot, frac)
            })
            .collect()
    }

    /// Resolved speculation races, in launch order.
    pub fn speculation(&self) -> &[Speculation] {
        &self.speculation
    }

    /// Per-tenant scheduler activity, sorted by tenant name. Empty
    /// when no tenant-tagged batch was registered (inline execution,
    /// or tracing attached below the workflow layer).
    pub fn tenants(&self) -> &[TenantSummary] {
        &self.tenants
    }

    /// Queue-wait percentiles, or `None` when no task was pool-queued
    /// (inline execution).
    pub fn queue_wait_stats(&self) -> Option<QueueWaitStats> {
        if self.queue_waits_ms.is_empty() {
            return None;
        }
        let pct = |p: f64| -> f64 {
            let n = self.queue_waits_ms.len();
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            self.queue_waits_ms[rank - 1]
        };
        Some(QueueWaitStats {
            count: self.queue_waits_ms.len(),
            p50_ms: pct(0.50),
            p90_ms: pct(0.90),
            p99_ms: pct(0.99),
            max_ms: *self.queue_waits_ms.last().expect("non-empty"),
        })
    }

    /// Renders the full report as human-readable text: per-worker
    /// Gantt timeline, per-job critical path vs. sum-of-walls, the
    /// reduce-load skew histogram, speculation attribution, and
    /// queue-wait percentiles.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let total_ms = self.total.as_secs_f64() * 1e3;
        let events: u64 = self.counts.values().sum();
        out.push_str(&format!(
            "trace report: {events} events over {total_ms:.2} ms\n"
        ));

        out.push_str("\nper-worker timeline\n");
        if self.lanes.is_empty() {
            out.push_str("  (no slot-attributed attempts recorded)\n");
        }
        const WIDTH: usize = 48;
        let utilization = self.utilization();
        for (slot, segs) in &self.lanes {
            let mut bar = vec!['.'; WIDTH];
            for seg in segs {
                if self.total.is_zero() {
                    continue;
                }
                let begin = (seg.start.as_secs_f64() / self.total.as_secs_f64() * WIDTH as f64)
                    .floor() as usize;
                let finish = (seg.end.as_secs_f64() / self.total.as_secs_f64() * WIDTH as f64)
                    .ceil() as usize;
                for cell in bar
                    .iter_mut()
                    .take(finish.min(WIDTH))
                    .skip(begin.min(WIDTH))
                {
                    *cell = '#';
                }
            }
            let bar: String = bar.into_iter().collect();
            let busy = utilization.get(slot).copied().unwrap_or(0.0) * 100.0;
            out.push_str(&format!(
                "  slot {slot} |{bar}| {busy:5.1}% busy, {} attempts\n",
                segs.len()
            ));
            if segs.len() <= 4 {
                for seg in segs {
                    out.push_str(&format!(
                        "      {:.2}..{:.2} ms {}\n",
                        seg.start.as_secs_f64() * 1e3,
                        seg.end.as_secs_f64() * 1e3,
                        seg.label
                    ));
                }
            }
        }

        out.push_str("\nstages (critical path vs. sum of task walls)\n");
        if self.jobs.is_empty() {
            out.push_str("  (no jobs recorded)\n");
        }
        for job in &self.jobs {
            let sum_ms = job.sum_of_walls.as_secs_f64() * 1e3;
            match job.wall {
                Some(wall) => {
                    let wall_ms = wall.as_secs_f64() * 1e3;
                    let ratio = if wall_ms > 0.0 { sum_ms / wall_ms } else { 0.0 };
                    out.push_str(&format!(
                        "  {}: wall {wall_ms:.2} ms, task walls {sum_ms:.2} ms ({ratio:.2}x), {} map + {} reduce tasks\n",
                        job.job, job.map_tasks, job.reduce_tasks
                    ));
                }
                None => out.push_str(&format!(
                    "  {}: unfinished, task walls {sum_ms:.2} ms\n",
                    job.job
                )),
            }
            if job.reduce_wall_ms.len() > 1 {
                out.push_str(&format!(
                    "    reduce-load skew: {}\n",
                    histogram(&job.reduce_wall_ms, 8)
                ));
            }
        }

        out.push_str("\nspeculation\n");
        if self.speculation.is_empty() {
            out.push_str("  (no speculative launches)\n");
        }
        for spec in &self.speculation {
            let winner = if spec.twin_won {
                "speculative twin won"
            } else {
                "original won the race"
            };
            match spec.saved {
                Some(saved) => out.push_str(&format!(
                    "  {}/{}/{}: {winner}, saved {:.2} ms\n",
                    spec.job,
                    spec.kind,
                    spec.task,
                    saved.as_secs_f64() * 1e3
                )),
                None => out.push_str(&format!(
                    "  {}/{}/{}: {winner}, loser not observed\n",
                    spec.job, spec.kind, spec.task
                )),
            }
        }

        out.push_str("\nqueue wait\n");
        match self.queue_wait_stats() {
            Some(stats) => out.push_str(&format!(
                "  {} waits: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
                stats.count, stats.p50_ms, stats.p90_ms, stats.p99_ms, stats.max_ms
            )),
            None => out.push_str("  (no pool-queued tasks)\n"),
        }

        out.push_str("\ntenants\n");
        if self.tenants.is_empty() {
            out.push_str("  (no tenant-tagged scheduler activity)\n");
        }
        for tenant in &self.tenants {
            let mean_wait_ms = if tenant.stages_admitted > 0 {
                tenant.admission_wait.as_secs_f64() * 1e3 / tenant.stages_admitted as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {}: {} stages submitted ({} admitted), {} tasks dispatched, mean admission wait {mean_wait_ms:.3} ms\n",
                tenant.tenant,
                tenant.stages_submitted,
                tenant.stages_admitted,
                tenant.tasks_dispatched
            ));
        }
        out
    }

    /// Exports the report as one JSON object (the payload of
    /// `BENCH_trace_report.json`): per-category counts, per-slot
    /// busy/utilization, per-job walls and reduce-load series,
    /// speculation attribution, and queue-wait percentiles.
    pub fn to_json(&self) -> Json {
        let events = Json::Obj(
            self.counts
                .iter()
                .map(|(k, v)| (k.to_string(), Json::Num(*v as f64)))
                .collect(),
        );
        let busy = self.slot_busy();
        let utilization = self.utilization();
        let workers = Json::Arr(
            busy.iter()
                .map(|(slot, busy)| {
                    Json::obj([
                        ("slot", Json::Num(*slot as f64)),
                        ("busy_ms", dur_ms(*busy)),
                        (
                            "utilization",
                            Json::Num(utilization.get(slot).copied().unwrap_or(0.0)),
                        ),
                    ])
                })
                .collect::<Vec<_>>(),
        );
        let jobs = Json::Arr(
            self.jobs
                .iter()
                .map(|job| {
                    Json::obj([
                        ("job", Json::str(&job.job)),
                        ("map_tasks", Json::Num(job.map_tasks as f64)),
                        ("reduce_tasks", Json::Num(job.reduce_tasks as f64)),
                        ("wall_ms", job.wall.map(dur_ms).unwrap_or(Json::Null)),
                        ("sum_task_wall_ms", dur_ms(job.sum_of_walls)),
                        (
                            "reduce_wall_ms",
                            Json::Arr(job.reduce_wall_ms.iter().map(|w| Json::Num(*w)).collect()),
                        ),
                    ])
                })
                .collect::<Vec<_>>(),
        );
        let speculation = Json::Arr(
            self.speculation
                .iter()
                .map(|spec| {
                    Json::obj([
                        ("job", Json::str(&spec.job)),
                        ("kind", Json::str(spec.kind.to_string())),
                        ("task", Json::Num(spec.task as f64)),
                        ("twin_won", Json::Bool(spec.twin_won)),
                        ("saved_ms", spec.saved.map(dur_ms).unwrap_or(Json::Null)),
                    ])
                })
                .collect::<Vec<_>>(),
        );
        let queue_wait = match self.queue_wait_stats() {
            Some(stats) => Json::obj([
                ("count", Json::Num(stats.count as f64)),
                ("p50_ms", Json::Num(stats.p50_ms)),
                ("p90_ms", Json::Num(stats.p90_ms)),
                ("p99_ms", Json::Num(stats.p99_ms)),
                ("max_ms", Json::Num(stats.max_ms)),
            ]),
            None => Json::Null,
        };
        let tenants = Json::Arr(
            self.tenants
                .iter()
                .map(|t| {
                    Json::obj([
                        ("tenant", Json::str(&t.tenant)),
                        ("stages_submitted", Json::Num(t.stages_submitted as f64)),
                        ("stages_admitted", Json::Num(t.stages_admitted as f64)),
                        ("tasks_submitted", Json::Num(t.tasks_submitted as f64)),
                        ("tasks_dispatched", Json::Num(t.tasks_dispatched as f64)),
                        ("admission_wait_ms", dur_ms(t.admission_wait)),
                    ])
                })
                .collect::<Vec<_>>(),
        );
        Json::obj([
            ("total_ms", dur_ms(self.total)),
            ("events", events),
            ("workers", workers),
            ("jobs", jobs),
            ("speculation", speculation),
            ("queue_wait", queue_wait),
            ("tenants", tenants),
        ])
    }
}

/// A compact fixed-bucket histogram rendering (`min..max` split into
/// `buckets`, counts as a bar of digits capped at 9).
fn histogram(samples: &[f64], buckets: usize) -> String {
    if samples.is_empty() {
        return "(empty)".to_string();
    }
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max <= min {
        return format!("{} tasks all at {min:.2} ms", samples.len());
    }
    let mut counts = vec![0usize; buckets];
    for &s in samples {
        let i = (((s - min) / (max - min)) * buckets as f64) as usize;
        counts[i.min(buckets - 1)] += 1;
    }
    let bar: String = counts
        .iter()
        .map(|&c| std::char::from_digit(c.min(9) as u32, 10).expect("single digit"))
        .collect();
    format!(
        "[{bar}] over {min:.2}..{max:.2} ms ({} tasks)",
        samples.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn finished(at: u64, slot: usize, task: usize, kind: FaultKind, wall: u64) -> TraceEvent {
        TraceEvent {
            at: ms(at),
            slot: Some(slot),
            data: TraceEventData::AttemptFinished {
                job: "j".into(),
                kind,
                task,
                attempt: 1,
                wall: ms(wall),
            },
        }
    }

    #[test]
    fn logical_view_keeps_lifecycle_and_drops_operational_events() {
        let logical = [
            TraceEventData::JobStarted {
                job: "j".into(),
                map_tasks: 2,
                reduce_tasks: 3,
            },
            TraceEventData::AttemptFailed {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                attempt: 1,
                message: "boom".into(),
            },
            TraceEventData::SpillRunSealed {
                job: "j".into(),
                task: 1,
                reduce_task: 2,
                records: 7,
            },
            TraceEventData::ShuffleCompleted {
                job: "j".into(),
                runs: 6,
                wall: ms(1),
            },
        ];
        for data in logical {
            assert!(
                data.logical_line().is_some(),
                "{} must be logical",
                data.category()
            );
        }
        let operational = [
            TraceEventData::SlotAcquired { tenant: None },
            TraceEventData::SlotReleased,
            TraceEventData::TasksEnqueued {
                tasks: 4,
                queue_depth: 4,
            },
            TraceEventData::QueueWaited {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                wait: ms(1),
            },
            TraceEventData::SpeculativeLaunched {
                job: "j".into(),
                kind: FaultKind::Reduce,
                task: 3,
            },
            TraceEventData::SpeculativeWon {
                job: "j".into(),
                kind: FaultKind::Reduce,
                task: 3,
                twin: true,
            },
            TraceEventData::SpeculativeLost {
                job: "j".into(),
                kind: FaultKind::Reduce,
                task: 3,
                twin: false,
            },
        ];
        for data in operational {
            assert!(
                data.logical_line().is_none(),
                "{} must be operational",
                data.category()
            );
        }
    }

    #[test]
    fn logical_lines_strip_walls_but_keep_coordinates() {
        let line = TraceEventData::AttemptFinished {
            job: "bdm".into(),
            kind: FaultKind::Sort,
            task: 4,
            attempt: 2,
            wall: ms(123),
        }
        .logical_line()
        .unwrap();
        assert_eq!(line, "attempt_finished job=bdm kind=sort task=4 attempt=2");
    }

    #[test]
    fn off_tracer_emits_nothing_and_recorder_captures_everything() {
        let recorder = Arc::new(TraceRecorder::new());
        let off = Tracer::off();
        assert!(!off.is_on());
        off.emit(None, TraceEventData::SlotAcquired { tenant: None });
        assert!(recorder.is_empty());

        let on = Tracer::new(recorder.clone() as Arc<dyn TraceSink>);
        assert!(on.is_on());
        on.emit(Some(2), TraceEventData::SlotAcquired { tenant: None });
        on.emit_with(None, || TraceEventData::TasksEnqueued {
            tasks: 3,
            queue_depth: 3,
        });
        assert_eq!(recorder.len(), 2);
        let events = recorder.events();
        assert_eq!(events[0].slot, Some(2));
        assert_eq!(events[1].data.category(), "tasks_enqueued");
        recorder.clear();
        assert!(recorder.is_empty());
    }

    #[test]
    fn recorder_logical_events_sort_canonically() {
        let recorder = TraceRecorder::new();
        let tracer = Tracer::new(Arc::new(TraceRecorder::new()));
        drop(tracer); // recorder below is fed directly, order scrambled
        for task in [2usize, 0, 1] {
            recorder.record(&TraceEvent {
                at: ms(task as u64),
                slot: Some(task),
                data: TraceEventData::AttemptStarted {
                    job: "j".into(),
                    kind: FaultKind::Map,
                    task,
                    attempt: 1,
                },
            });
        }
        recorder.record(&TraceEvent {
            at: ms(9),
            slot: None,
            data: TraceEventData::QueueWaited {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                wait: ms(1),
            },
        });
        assert_eq!(
            recorder.logical_events(),
            vec![
                "attempt_started job=j kind=map task=0 attempt=1",
                "attempt_started job=j kind=map task=1 attempt=1",
                "attempt_started job=j kind=map task=2 attempt=1",
            ]
        );
        assert_eq!(recorder.count("attempt_started"), 3);
        assert_eq!(recorder.count("queue_waited"), 1);
    }

    #[test]
    fn counting_sink_counts_per_category() {
        let sink = CountingSink::new();
        for _ in 0..3 {
            sink.record(&TraceEvent {
                at: ms(0),
                slot: None,
                data: TraceEventData::SlotAcquired { tenant: None },
            });
        }
        sink.record(&TraceEvent {
            at: ms(1),
            slot: None,
            data: TraceEventData::SlotReleased,
        });
        assert_eq!(sink.count("slot_acquired"), 3);
        assert_eq!(sink.count("slot_released"), 1);
        assert_eq!(sink.count("job_started"), 0);
        assert_eq!(sink.counts().len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_object_per_line() {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::new(Shared(buf.clone()));
        sink.record(&TraceEvent {
            at: ms(5),
            slot: Some(1),
            data: TraceEventData::AttemptFinished {
                job: "j \"quoted\"".into(),
                kind: FaultKind::Reduce,
                task: 3,
                attempt: 2,
                wall: ms(4),
            },
        });
        sink.record(&TraceEvent {
            at: ms(6),
            slot: None,
            data: TraceEventData::JobFinished {
                job: "j".into(),
                wall: ms(6),
            },
        });
        sink.flush().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(Json::as_str),
            Some("attempt_finished")
        );
        assert_eq!(first.get("slot").and_then(Json::as_f64), Some(1.0));
        assert_eq!(first.get("task").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            first.get("job").and_then(Json::as_str),
            Some("j \"quoted\"")
        );
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("slot"), Some(&Json::Null));
        assert_eq!(second.get("wall_ms").and_then(Json::as_f64), Some(6.0));
    }

    #[test]
    fn report_attributes_lanes_jobs_and_queue_waits() {
        let mut events = vec![
            TraceEvent {
                at: ms(0),
                slot: None,
                data: TraceEventData::JobStarted {
                    job: "j".into(),
                    map_tasks: 2,
                    reduce_tasks: 2,
                },
            },
            finished(10, 0, 0, FaultKind::Map, 10),
            finished(12, 1, 1, FaultKind::Map, 8),
            finished(30, 0, 0, FaultKind::Reduce, 18),
            finished(40, 1, 1, FaultKind::Reduce, 26),
            TraceEvent {
                at: ms(40),
                slot: None,
                data: TraceEventData::JobFinished {
                    job: "j".into(),
                    wall: ms(40),
                },
            },
        ];
        for (task, wait) in [(0u64, 1u64), (1, 3), (2, 2), (3, 9)] {
            events.push(TraceEvent {
                at: ms(task),
                slot: Some(0),
                data: TraceEventData::QueueWaited {
                    job: "j".into(),
                    kind: FaultKind::Map,
                    task: task as usize,
                    wait: ms(wait),
                },
            });
        }
        let report = TraceReport::from_events(&events);
        assert_eq!(report.total(), ms(40));
        assert_eq!(report.count("attempt_finished"), 4);
        let busy = report.slot_busy();
        assert_eq!(busy[&0], ms(28));
        assert_eq!(busy[&1], ms(34));
        let utilization = report.utilization();
        assert!((utilization[&0] - 0.7).abs() < 1e-9);
        assert!((utilization[&1] - 0.85).abs() < 1e-9);
        let stats = report.queue_wait_stats().unwrap();
        assert_eq!(stats.count, 4);
        assert_eq!(stats.p50_ms, 2.0);
        assert_eq!(stats.p90_ms, 9.0);
        assert_eq!(stats.max_ms, 9.0);
        let text = report.to_text();
        assert!(text.contains("slot 0"), "timeline lane missing:\n{text}");
        assert!(
            text.contains("wall 40.00 ms"),
            "critical path missing:\n{text}"
        );
        assert!(
            text.contains("p50 2.000 ms"),
            "percentiles missing:\n{text}"
        );
    }

    #[test]
    fn report_attributes_speculation_savings() {
        let events = vec![
            TraceEvent {
                at: ms(100),
                slot: None,
                data: TraceEventData::SpeculativeLaunched {
                    job: "j".into(),
                    kind: FaultKind::Reduce,
                    task: 3,
                },
            },
            TraceEvent {
                at: ms(150),
                slot: Some(1),
                data: TraceEventData::SpeculativeWon {
                    job: "j".into(),
                    kind: FaultKind::Reduce,
                    task: 3,
                    twin: true,
                },
            },
            TraceEvent {
                at: ms(420),
                slot: Some(0),
                data: TraceEventData::SpeculativeLost {
                    job: "j".into(),
                    kind: FaultKind::Reduce,
                    task: 3,
                    twin: false,
                },
            },
        ];
        let report = TraceReport::from_events(&events);
        let specs = report.speculation();
        assert_eq!(specs.len(), 1);
        assert!(specs[0].twin_won);
        assert_eq!(specs[0].saved, Some(ms(270)));
        let text = report.to_text();
        assert!(
            text.contains("speculative twin won, saved 270.00 ms"),
            "{text}"
        );
    }

    #[test]
    fn report_json_reparses_and_carries_every_section() {
        let events = vec![
            TraceEvent {
                at: ms(0),
                slot: None,
                data: TraceEventData::JobStarted {
                    job: "j".into(),
                    map_tasks: 1,
                    reduce_tasks: 1,
                },
            },
            finished(5, 0, 0, FaultKind::Map, 5),
            TraceEvent {
                at: ms(6),
                slot: Some(0),
                data: TraceEventData::QueueWaited {
                    job: "j".into(),
                    kind: FaultKind::Map,
                    task: 0,
                    wait: ms(2),
                },
            },
        ];
        let report = TraceReport::from_events(&events);
        let json = report.to_json();
        let reparsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(reparsed, json);
        assert_eq!(
            json.get("events")
                .and_then(|e| e.get("attempt_finished"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            json.get("workers")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            json.get("jobs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            json.get("queue_wait")
                .and_then(|q| q.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn histogram_renders_fixed_width_buckets() {
        assert_eq!(histogram(&[], 4), "(empty)");
        assert!(histogram(&[2.0, 2.0], 4).contains("all at 2.00 ms"));
        let h = histogram(&[0.0, 0.0, 1.0, 3.9, 4.0], 4);
        assert!(h.starts_with("[2102]"), "{h}");
    }

    #[test]
    fn event_json_encodes_every_category() {
        let all = [
            TraceEventData::JobStarted {
                job: "j".into(),
                map_tasks: 1,
                reduce_tasks: 1,
            },
            TraceEventData::JobFinished {
                job: "j".into(),
                wall: ms(1),
            },
            TraceEventData::StageStarted {
                workflow: "w".into(),
                job: "j".into(),
                stage: 0,
            },
            TraceEventData::StageFinished {
                workflow: "w".into(),
                job: "j".into(),
                stage: 0,
                wall: ms(1),
            },
            TraceEventData::AttemptStarted {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                attempt: 1,
            },
            TraceEventData::AttemptFinished {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                attempt: 1,
                wall: ms(1),
            },
            TraceEventData::AttemptFailed {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                attempt: 1,
                message: "m".into(),
            },
            TraceEventData::AttemptRetried {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                next_attempt: 2,
            },
            TraceEventData::SpeculativeLaunched {
                job: "j".into(),
                kind: FaultKind::Reduce,
                task: 0,
            },
            TraceEventData::SpeculativeWon {
                job: "j".into(),
                kind: FaultKind::Reduce,
                task: 0,
                twin: false,
            },
            TraceEventData::SpeculativeLost {
                job: "j".into(),
                kind: FaultKind::Reduce,
                task: 0,
                twin: true,
            },
            TraceEventData::SpillRunSealed {
                job: "j".into(),
                task: 0,
                reduce_task: 0,
                records: 1,
            },
            TraceEventData::ShuffleCompleted {
                job: "j".into(),
                runs: 1,
                wall: ms(1),
            },
            TraceEventData::SlotAcquired { tenant: None },
            TraceEventData::SlotReleased,
            TraceEventData::TasksEnqueued {
                tasks: 1,
                queue_depth: 1,
            },
            TraceEventData::QueueWaited {
                job: "j".into(),
                kind: FaultKind::Map,
                task: 0,
                wait: ms(1),
            },
        ];
        for data in all {
            let category = data.category();
            let event = TraceEvent {
                at: ms(7),
                slot: Some(0),
                data,
            };
            let json = event.to_json();
            let reparsed = Json::parse(&json.to_string()).unwrap();
            assert_eq!(reparsed.get("event").and_then(Json::as_str), Some(category));
            assert_eq!(reparsed.get("at_ms").and_then(Json::as_f64), Some(7.0));
        }
    }
}
