//! Deterministic work pools for running homogeneous tasks.
//!
//! Workers pull task indices from an atomic cursor; results land in
//! index-addressed slots, so the result vector is always in task order
//! regardless of completion order — the keystone of the engine's
//! determinism guarantee.
//!
//! Two execution modes share that algorithm:
//!
//! * [`run_tasks`] — a *transient* pool: std scoped threads spawned
//!   for one call and joined before it returns (the historical
//!   per-job path, still used by [`crate::engine::Job::run`]);
//! * [`WorkerPool`] — a *persistent* pool: threads spawned once at
//!   construction and reused by every [`WorkerPool::run_tasks`] call
//!   until drop ([`crate::engine::Job::run_on`] and every workflow
//!   bound to a [`crate::runtime::Runtime`]). Back-to-back jobs pay
//!   zero thread-spawn cost.
//!
//! Both modes produce byte-identical results for the same `(count,
//! f)`: outputs are index-addressed and the task function observes
//! nothing about which worker ran it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::fault::lock_unpoisoned;
use crate::trace::{TaskCtx, TraceEventData, Tracer};

/// Runs `count` tasks produced by `f(task_index)` on up to
/// `parallelism` worker threads and returns results in task order.
///
/// With `parallelism == 1` everything runs on the calling thread (no
/// spawn overhead), which keeps unit tests fast and stack traces clean.
pub fn run_tasks<T, F>(count: usize, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_tasks_ctx(count, parallelism, &Tracer::off(), |i, _ctx| f(i))
}

/// [`run_tasks`] with per-task scheduling context: `f` additionally
/// receives the [`TaskCtx`] (worker-slot index and enqueue→start
/// wait), and slot lifecycle events are emitted on `tracer`. The
/// engine's phase dispatch goes through here; the public [`run_tasks`]
/// delegates with a disabled tracer.
pub(crate) fn run_tasks_ctx<T, F>(count: usize, parallelism: usize, tracer: &Tracer, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, TaskCtx) -> T + Sync,
{
    assert!(parallelism > 0, "parallelism must be at least 1");
    if count == 0 {
        return Vec::new();
    }
    if parallelism == 1 || count == 1 {
        // Inline execution: no queue, no slots — zero scheduling delay
        // by construction, so no pool events are emitted.
        return (0..count).map(|i| f(i, TaskCtx::default())).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = parallelism.min(count);
    let enqueued = Instant::now();
    tracer.emit(
        None,
        TraceEventData::TasksEnqueued {
            tasks: count,
            queue_depth: count,
        },
    );
    // std scoped threads: a worker panic propagates out of the scope
    // after all threads joined, so the slot-unwrap below only ever runs
    // on a fully successful pool.
    std::thread::scope(|scope| {
        let slots = &slots;
        let cursor = &cursor;
        let f = &f;
        for w in 0..workers {
            scope.spawn(move || {
                tracer.emit(Some(w), TraceEventData::SlotAcquired);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let ctx = TaskCtx {
                        slot: w,
                        queue_wait: enqueued.elapsed(),
                    };
                    let result = f(i, ctx);
                    // Poison-tolerant: the guarded value is a write-once
                    // slot, valid at every instruction boundary, so a
                    // panic elsewhere must not escalate to a double-panic
                    // abort here.
                    let prev = lock_unpoisoned(&slots[i]).replace(result);
                    assert!(prev.is_none(), "slot {i} written twice");
                }
                tracer.emit(Some(w), TraceEventData::SlotReleased);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

/// A lifetime-erased unit of work queued on a [`WorkerPool`].
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// State shared between a [`WorkerPool`] handle and its workers.
struct PoolShared {
    queue: Mutex<TaskQueue>,
    /// Signalled when tasks are queued or shutdown is requested.
    work_ready: Condvar,
    /// Erased tasks executed by workers over the pool's lifetime — a
    /// cheap witness that consecutive runs reuse the same pool.
    tasks_executed: AtomicU64,
}

struct TaskQueue {
    tasks: VecDeque<PoolTask>,
    shutdown: bool,
}

/// Per-dispatch synchronization: [`WorkerPool::run_tasks`] must not
/// return before every task it queued has finished, because the queued
/// closures borrow its stack frame.
struct DispatchSync {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

/// A persistent worker pool: `parallelism` threads spawned **once** at
/// construction and reused by every [`WorkerPool::run_tasks`] call.
///
/// Semantics are identical to the transient [`run_tasks`] — same
/// cursor/slot algorithm, same inline fast path for
/// `parallelism == 1` or a single task, same panic propagation — so a
/// job produces byte-identical output whichever mode executes it. The
/// difference is purely operational: a long-lived
/// [`crate::runtime::Runtime`] runs many workflows back to back
/// without paying a thread spawn/join per job phase.
///
/// Do not call [`WorkerPool::run_tasks`] from inside one of the pool's
/// own tasks: the outer call holds workers that the inner call would
/// need, and the pool does not grow.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("threads_spawned", &self.handles.len())
            .field("tasks_executed", &self.tasks_executed())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `parallelism` task slots.
    ///
    /// With `parallelism == 1` no OS thread is spawned at all: every
    /// dispatch runs inline on the caller, exactly like the transient
    /// path (fast unit tests, clean stack traces).
    ///
    /// # Panics
    /// If `parallelism` is zero.
    pub fn new(parallelism: usize) -> Self {
        assert!(parallelism > 0, "parallelism must be at least 1");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(TaskQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            tasks_executed: AtomicU64::new(0),
        });
        let handles = if parallelism == 1 {
            Vec::new()
        } else {
            (0..parallelism)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_main(&shared))
                })
                .collect()
        };
        Self {
            shared,
            threads: parallelism,
            handles,
        }
    }

    /// The configured parallelism (task slots).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// OS threads this pool spawned over its lifetime. Constant after
    /// construction (`parallelism`, or 0 for the inline single-slot
    /// pool) — the reuse guarantee tests pin.
    pub fn threads_spawned(&self) -> usize {
        self.handles.len()
    }

    /// Erased tasks the pool's workers have executed so far. Grows
    /// with every pooled dispatch; stays 0 for inline execution.
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }

    /// Runs `count` tasks produced by `f(task_index)` on the pool's
    /// workers and returns results in task order — the persistent-pool
    /// twin of the module-level [`run_tasks`].
    ///
    /// Blocks until every task completed; a panicking task is
    /// propagated to the caller after the remaining tasks finished
    /// (workers themselves survive).
    pub fn run_tasks<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_tasks_capped(count, usize::MAX, f)
    }

    /// Like [`WorkerPool::run_tasks`], but uses at most `cap` of the
    /// pool's worker slots concurrently — a per-dispatch parallelism
    /// override that never spawns or retires threads (the unused
    /// workers simply see no tasks for this dispatch). `cap == 1` runs
    /// inline on the caller, like a single-slot pool. Results are
    /// byte-identical at any cap.
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn run_tasks_capped<T, F>(&self, count: usize, cap: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_tasks_capped_ctx(count, cap, &Tracer::off(), |i, _ctx| f(i))
    }

    /// [`WorkerPool::run_tasks_capped`] with per-task scheduling
    /// context and slot lifecycle events — see [`run_tasks_ctx`]. The
    /// public entry points delegate here with a disabled tracer.
    pub(crate) fn run_tasks_capped_ctx<T, F>(
        &self,
        count: usize,
        cap: usize,
        tracer: &Tracer,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, TaskCtx) -> T + Sync,
    {
        assert!(cap > 0, "parallelism cap must be at least 1");
        if count == 0 {
            return Vec::new();
        }
        if self.handles.is_empty() || count == 1 || cap == 1 {
            // Inline execution bypasses the queue entirely: zero
            // scheduling delay by construction, no pool events, and
            // `tasks_executed` intentionally stays untouched.
            return (0..count).map(|i| f(i, TaskCtx::default())).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = cap.min(self.handles.len()).min(count);
        let sync = DispatchSync {
            pending: Mutex::new(workers),
            done: Condvar::new(),
            panic: Mutex::new(None),
        };
        let enqueued = Instant::now();
        {
            // The bodies capture `w` by value (it is the slot id), so
            // they are `move` closures; everything shared is re-borrowed
            // here so the move copies references, not the structures.
            let slots = &slots;
            let cursor = &cursor;
            let sync = &sync;
            let f = &f;
            let mut queue = lock_unpoisoned(&self.shared.queue);
            for w in 0..workers {
                // One cursor-draining loop per worker slot, same as the
                // transient pool's per-thread body. Every lock below is
                // poison-tolerant: a panic while holding a slot must
                // not abort via double-panic or wedge the dispatch
                // handshake (the guarded values — write-once slots and
                // a plain counter — are valid at every instruction
                // boundary).
                let body = move || {
                    tracer.emit(Some(w), TraceEventData::SlotAcquired);
                    let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let ctx = TaskCtx {
                            slot: w,
                            queue_wait: enqueued.elapsed(),
                        };
                        let result = f(i, ctx);
                        let prev = lock_unpoisoned(&slots[i]).replace(result);
                        assert!(prev.is_none(), "slot {i} written twice");
                    }));
                    if let Err(payload) = outcome {
                        // First panic wins; store BEFORE the decrement
                        // so the dispatcher observes it once pending
                        // reaches zero.
                        lock_unpoisoned(&sync.panic).get_or_insert(payload);
                    }
                    tracer.emit(Some(w), TraceEventData::SlotReleased);
                    let mut pending = lock_unpoisoned(&sync.pending);
                    *pending -= 1;
                    if *pending == 0 {
                        sync.done.notify_all();
                    }
                };
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(body);
                // SAFETY: the task borrows `slots`, `cursor`, `sync`
                // and `f` from this stack frame. The erased 'static
                // lifetime never outlives them because this function
                // blocks on `sync.pending == 0` below — i.e. on every
                // queued task having fully returned (panic paths
                // included, via catch_unwind) — before the frame is
                // torn down. Layout-wise this is a fat-pointer cast
                // that only forgets a lifetime.
                let task: PoolTask =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, PoolTask>(task) };
                queue.tasks.push_back(task);
            }
            tracer.emit_with(None, || TraceEventData::TasksEnqueued {
                tasks: count,
                queue_depth: queue.tasks.len(),
            });
            self.shared.work_ready.notify_all();
        }
        // The borrow fence: wait for all dispatched tasks.
        let mut pending = lock_unpoisoned(&sync.pending);
        while *pending > 0 {
            pending = sync
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
        if let Some(payload) = lock_unpoisoned(&sync.panic).take() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| panic!("task {i} produced no result"))
            })
            .collect()
    }

    /// Number of OS worker threads currently servicing the queue (0
    /// for the inline single-slot pool).
    pub(crate) fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues `copies` erased clones of `body` on the pool's workers
    /// without any completion bookkeeping of its own — the raw
    /// building block the speculative dispatcher
    /// ([`crate::fault::run_speculative`]) uses to run its own
    /// work-queue loops on pool threads.
    ///
    /// # Safety
    /// `body` may borrow the caller's stack frame. The caller MUST NOT
    /// return (or otherwise invalidate those borrows) until it has
    /// observed that every enqueued copy fully returned — panic paths
    /// included — via its own fence (e.g. a pending count decremented
    /// by a drop guard inside `body`).
    pub(crate) unsafe fn enqueue_fenced<'env>(&self, copies: usize, body: &'env (dyn Fn() + Sync)) {
        {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            for _ in 0..copies {
                let task: Box<dyn FnOnce() + Send + 'env> = Box::new(body);
                // SAFETY: delegated to the caller per this function's
                // contract — the fence outlives every enqueued copy.
                let task: PoolTask = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, PoolTask>(task)
                };
                queue.tasks.push_back(task);
            }
        }
        self.shared.work_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            queue.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker panic would already have been propagated to the
            // dispatcher; a join error here means a task panicked in a
            // way catch_unwind cannot contain (abort), so unwrapping
            // is unreachable in practice.
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: &PoolShared) {
    loop {
        let task = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Count BEFORE running: the task body performs the dispatch's
        // pending-decrement handshake, so incrementing afterwards
        // would let `run_tasks` return while the counter still misses
        // the tasks it just ran.
        shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
        // Dispatched tasks contain their own catch_unwind; this outer
        // guard only keeps the worker alive if that bookkeeping itself
        // ever panicked.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        // Make later tasks finish earlier by sleeping inversely.
        let out = run_tasks(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i as u64) * 2));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn sequential_path_matches_parallel_path() {
        let seq = run_tasks(20, 1, |i| i * i);
        let par = run_tasks(20, 6, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_tasks(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<u8> = run_tasks(0, 4, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_panics() {
        let _ = run_tasks(1, 0, |i| i);
    }

    #[test]
    fn worker_pool_matches_transient_results() {
        let pool = WorkerPool::new(4);
        for count in [0usize, 1, 2, 7, 100] {
            let pooled = pool.run_tasks(count, |i| i * 3 + 1);
            let transient = run_tasks(count, 4, |i| i * 3 + 1);
            assert_eq!(pooled, transient, "count {count}");
        }
    }

    #[test]
    fn worker_pool_reuses_threads_across_dispatches() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.threads_spawned(), 3);
        let before = pool.tasks_executed();
        for round in 0..5 {
            let out = pool.run_tasks(10, |i| i + round);
            assert_eq!(out.len(), 10);
            assert_eq!(
                pool.threads_spawned(),
                3,
                "no new threads may appear per dispatch"
            );
        }
        assert!(
            pool.tasks_executed() > before,
            "pooled dispatches must run on the persistent workers"
        );
    }

    #[test]
    fn single_slot_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads_spawned(), 0);
        let caller = std::thread::current().id();
        let ids = pool.run_tasks(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
        assert_eq!(pool.tasks_executed(), 0, "inline path bypasses the queue");
    }

    #[test]
    fn worker_pool_tasks_can_borrow_the_caller_stack() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..50).collect();
        let doubled = pool.run_tasks(data.len(), |i| data[i] * 2);
        assert_eq!(doubled[49], 98);
    }

    #[test]
    fn worker_pool_propagates_task_panics_and_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks(8, |i| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate to the dispatcher");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("exploded"), "got {msg:?}");
        // The pool stays usable after a panicking dispatch.
        assert_eq!(pool.run_tasks(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_slot_pool_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn capped_dispatch_matches_uncapped_results_without_new_threads() {
        let pool = WorkerPool::new(4);
        let spawned = pool.threads_spawned();
        for cap in [1usize, 2, 3, 4, 99] {
            let capped = pool.run_tasks_capped(20, cap, |i| i * 7);
            let uncapped = pool.run_tasks(20, |i| i * 7);
            assert_eq!(capped, uncapped, "cap {cap}");
            assert_eq!(pool.threads_spawned(), spawned, "cap {cap} spawned threads");
        }
    }

    #[test]
    fn cap_of_one_runs_inline_on_the_caller() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let ids = pool.run_tasks_capped(6, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn zero_cap_panics() {
        let pool = WorkerPool::new(2);
        let _ = pool.run_tasks_capped(4, 0, |i| i);
    }
}
