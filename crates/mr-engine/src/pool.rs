//! Deterministic work pools for running homogeneous tasks.
//!
//! Workers pull task indices from a per-batch cursor; results land in
//! index-addressed slots, so the result vector is always in task order
//! regardless of completion order — the keystone of the engine's
//! determinism guarantee.
//!
//! Two execution modes share that algorithm:
//!
//! * [`run_tasks`] — a *transient* pool: std scoped threads spawned
//!   for one call and joined before it returns (the historical
//!   per-job path, still used by [`crate::engine::Job::run`]);
//! * [`WorkerPool`] — a *persistent* pool: threads spawned once at
//!   construction and reused by every [`WorkerPool::run_tasks`] call
//!   until drop ([`crate::engine::Job::run_on`] and every workflow
//!   bound to a [`crate::runtime::Runtime`]). Back-to-back jobs pay
//!   zero thread-spawn cost.
//!
//! Both modes produce byte-identical results for the same `(count,
//! f)`: outputs are index-addressed and the task function observes
//! nothing about which worker ran it.
//!
//! # The batch scheduler
//!
//! A [`WorkerPool`] dispatch does not drive its tasks to completion by
//! itself. It *registers* the task set as a **batch** — tagged with
//! [`BatchTag`] `(tenant, workflow, stage, weight)` — on a shared
//! ready-queue, and the persistent workers claim **individual tasks**
//! from whichever registered batch the pool's [`SchedulingPolicy`]
//! prefers. Concurrent dispatches from different threads therefore
//! interleave at *operation* granularity: a long batch no longer
//! blocks a short one queued behind it, and fairness between tenants
//! is a policy decision instead of an accident of arrival order.
//!
//! The dispatching thread is not idle while it waits: it claims tasks
//! from its *own* batch (counted against the batch's parallelism cap
//! like any worker) until none are claimable, then blocks on the
//! batch's completion fence. Results are index-addressed per batch, so
//! outputs are byte-identical under every policy, cap, and tenant mix.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::fault::lock_unpoisoned;
use crate::trace::{TaskCtx, TraceEventData, Tracer};

/// Runs `count` tasks produced by `f(task_index)` on up to
/// `parallelism` worker threads and returns results in task order.
///
/// With `parallelism == 1` everything runs on the calling thread (no
/// spawn overhead), which keeps unit tests fast and stack traces clean.
pub fn run_tasks<T, F>(count: usize, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_tasks_ctx(count, parallelism, &Tracer::off(), |i, _ctx| f(i))
}

/// [`run_tasks`] with per-task scheduling context: `f` additionally
/// receives the [`TaskCtx`] (worker-slot index and enqueue→start
/// wait), and slot lifecycle events are emitted on `tracer`. The
/// engine's phase dispatch goes through here; the public [`run_tasks`]
/// delegates with a disabled tracer.
pub(crate) fn run_tasks_ctx<T, F>(count: usize, parallelism: usize, tracer: &Tracer, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, TaskCtx) -> T + Sync,
{
    assert!(parallelism > 0, "parallelism must be at least 1");
    if count == 0 {
        return Vec::new();
    }
    if parallelism == 1 || count == 1 {
        // Inline execution: no queue, no slots — zero scheduling delay
        // by construction, so no pool events are emitted.
        return (0..count).map(|i| f(i, TaskCtx::default())).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = parallelism.min(count);
    let enqueued = Instant::now();
    tracer.emit(
        None,
        TraceEventData::TasksEnqueued {
            tasks: count,
            queue_depth: count,
        },
    );
    // std scoped threads: a worker panic propagates out of the scope
    // after all threads joined, so the slot-unwrap below only ever runs
    // on a fully successful pool.
    std::thread::scope(|scope| {
        let slots = &slots;
        let cursor = &cursor;
        let f = &f;
        for w in 0..workers {
            scope.spawn(move || {
                tracer.emit(Some(w), TraceEventData::SlotAcquired { tenant: None });
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let ctx = TaskCtx {
                        slot: w,
                        queue_wait: enqueued.elapsed(),
                    };
                    let result = f(i, ctx);
                    // Poison-tolerant: the guarded value is a write-once
                    // slot, valid at every instruction boundary, so a
                    // panic elsewhere must not escalate to a double-panic
                    // abort here.
                    let prev = lock_unpoisoned(&slots[i]).replace(result);
                    assert!(prev.is_none(), "slot {i} written twice");
                }
                tracer.emit(Some(w), TraceEventData::SlotReleased);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

/// How the shared pool picks the next task when batches from several
/// tenants are registered at once.
///
/// Whatever the policy, every task of every batch runs exactly once
/// and results are byte-identical — the policy only decides *order*,
/// i.e. latency and fairness, never output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// Batches are served strictly in registration order: all
    /// claimable tasks of the oldest batch first. Lowest overhead,
    /// no fairness — a long tenant delays everyone behind it.
    #[default]
    Fifo,
    /// The next task comes from a claimable batch whose *tenant*
    /// currently has the fewest tasks in flight (ties broken by
    /// registration order) — concurrent tenants converge to equal
    /// shares of the pool regardless of batch sizes.
    FairShare,
    /// The next task comes from the claimable batch with the least
    /// estimated remaining work: the batch's weight hint (comparison
    /// pairs, when the BDM computed one) scaled by its unclaimed
    /// fraction, falling back to the unclaimed task count for
    /// unweighted batches. Approximates shortest-remaining-processing-
    /// time, minimizing mean resolve latency.
    ShortestRemainingWork,
}

impl SchedulingPolicy {
    /// Stable lower-case name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            SchedulingPolicy::Fifo => "fifo",
            SchedulingPolicy::FairShare => "fair_share",
            SchedulingPolicy::ShortestRemainingWork => "shortest_remaining_work",
        }
    }
}

/// Identity of a dispatched task batch on the shared scheduler:
/// which tenant submitted it, which workflow and stage it implements,
/// and an optional total-work hint used by
/// [`SchedulingPolicy::ShortestRemainingWork`].
#[derive(Debug, Clone)]
pub struct BatchTag {
    /// Logical submitter (one per concurrently-resolving caller).
    pub tenant: Arc<str>,
    /// Workflow the batch belongs to; empty for untagged dispatches
    /// (direct `run_tasks` calls outside any workflow).
    pub workflow: Arc<str>,
    /// Zero-based stage index within the workflow.
    pub stage: usize,
    /// Estimated total work of the *stage* in comparison pairs (0 =
    /// unknown). Seeded from the BDM's exact pair counts when a stage
    /// has one.
    pub weight: u64,
}

impl BatchTag {
    /// Tag for a batch attributed to `tenant` running `workflow`'s
    /// stage `stage`, with `weight` estimated comparison pairs
    /// (0 when unknown).
    pub fn new(
        tenant: impl Into<Arc<str>>,
        workflow: impl Into<Arc<str>>,
        stage: usize,
        weight: u64,
    ) -> Self {
        Self {
            tenant: tenant.into(),
            workflow: workflow.into(),
            stage,
            weight,
        }
    }

    /// The tag used by dispatches that did not come through a
    /// workflow: tenant `"default"`, no workflow, no weight hint.
    pub fn untagged() -> Self {
        Self {
            tenant: Arc::from("default"),
            workflow: Arc::from(""),
            stage: 0,
            weight: 0,
        }
    }
}

/// A lifetime-erased unit of work queued on a [`WorkerPool`]'s raw
/// lane (see [`WorkerPool::enqueue_fenced`]).
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// A type- and lifetime-erased pointer to a dispatch's task body.
///
/// Plain raw pointers instead of a transmuted `Box<dyn Fn>`: workers
/// may hold their `Arc<BatchShared>` clone slightly past the
/// dispatcher's completion fence, and raw pointers (unlike references
/// inside a boxed closure) carry no validity invariant, so that late
/// drop is trivially sound.
struct RawRunner {
    data: *const (),
    call: unsafe fn(*const (), usize, TaskCtx),
}

// SAFETY: `data` points at a `F: Fn(usize, TaskCtx) + Sync` plus
// `Sync` result slots on the dispatching thread's stack; invoking it
// from any thread is safe while the dispatch fence holds, which
// `run_tasks_tagged_ctx` guarantees (it does not return before every
// claimed task finished).
unsafe impl Send for RawRunner {}
unsafe impl Sync for RawRunner {}

impl RawRunner {
    /// Erases `f` to a raw callable.
    ///
    /// # Safety
    /// The caller must keep `*f` alive and un-moved until it has
    /// observed that no further [`RawRunner::invoke`] call can be in
    /// flight (the batch completion fence).
    unsafe fn erase<F: Fn(usize, TaskCtx) + Sync>(f: &F) -> Self {
        unsafe fn call<F: Fn(usize, TaskCtx)>(data: *const (), i: usize, ctx: TaskCtx) {
            // SAFETY: `data` was produced from `&F` in `erase`; the
            // fence contract keeps it valid for the duration.
            let f = unsafe { &*(data.cast::<F>()) };
            f(i, ctx);
        }
        Self {
            data: (f as *const F).cast(),
            call: call::<F>,
        }
    }

    /// Runs task `i`.
    ///
    /// # Safety
    /// Only callable while the dispatch fence of the owning batch
    /// holds (see [`RawRunner::erase`]).
    unsafe fn invoke(&self, i: usize, ctx: TaskCtx) {
        // SAFETY: delegated to the caller.
        unsafe { (self.call)(self.data, i, ctx) }
    }
}

/// One registered dispatch on the shared scheduler.
///
/// The counters (`next`, `running`, `finished`) are guarded by the
/// pool's scheduler mutex — they are atomics only so the struct can be
/// shared via `Arc` without interior `&mut`; all loads/stores happen
/// under the lock and use relaxed ordering.
struct BatchShared {
    /// Registration sequence number (FIFO order, tie-breaker).
    seq: u64,
    tag: BatchTag,
    /// Total tasks in the batch.
    count: usize,
    /// Max tasks of this batch running concurrently (dispatch cap).
    cap: usize,
    /// Registration instant — per-task queue wait is measured from it.
    enqueued: Instant,
    /// Owned tracer clone: workers emit slot/admission events with it.
    tracer: Tracer,
    runner: RawRunner,
    /// Next unclaimed task index (== `count` when fully claimed).
    next: AtomicUsize,
    /// Tasks currently executing.
    running: AtomicUsize,
    /// Tasks fully finished, as seen by the scheduler (batch removal).
    finished: AtomicUsize,
    /// Whether the first task has been claimed (StageAdmitted edge).
    admitted: AtomicBool,
    /// Completion fence state — the *only* fields guarded by the
    /// batch-local mutex, so the handshake never nests inside the
    /// scheduler lock.
    done: Mutex<BatchDone>,
    done_cv: Condvar,
}

#[derive(Default)]
struct BatchDone {
    /// Tasks fully finished, as seen by the dispatcher fence.
    finished: usize,
    /// First panic payload of the batch, if any.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

/// Scheduler state shared between a [`WorkerPool`] handle and its
/// workers, guarded by one mutex.
struct Scheduler {
    /// Raw-lane tasks ([`WorkerPool::enqueue_fenced`]) — always
    /// served before batch tasks, because the speculative dispatcher
    /// that uses this lane is itself racing a deadline.
    direct: VecDeque<PoolTask>,
    /// Registered batches in registration order. A batch is removed
    /// when its last task finishes.
    batches: Vec<Arc<BatchShared>>,
    /// Next registration sequence number.
    next_seq: u64,
    /// Tasks currently executing (workers and caller-help combined).
    busy: usize,
    /// Tasks in flight per tenant — the FairShare signal and the
    /// [`PoolStats`] per-tenant snapshot.
    inflight: BTreeMap<Arc<str>, usize>,
    shutdown: bool,
}

impl Scheduler {
    /// Unclaimed tasks across both lanes.
    fn queue_depth(&self) -> usize {
        self.direct.len()
            + self
                .batches
                .iter()
                .map(|b| b.count.saturating_sub(b.next.load(Ordering::Relaxed)))
                .sum::<usize>()
    }
}

/// State shared between a [`WorkerPool`] handle and its workers.
struct PoolShared {
    sched: Mutex<Scheduler>,
    /// Signalled when work arrives, capacity frees up, or shutdown is
    /// requested.
    work_ready: Condvar,
    /// Tasks executed through the shared scheduler (by workers or by
    /// dispatcher caller-help) over the pool's lifetime — a cheap
    /// witness that consecutive runs reuse the same pool. Inline
    /// dispatches bypass the scheduler and do not count.
    tasks_executed: AtomicU64,
    policy: SchedulingPolicy,
}

/// A point-in-time snapshot of the shared scheduler, for backpressure
/// decisions ([`crate::runtime::Runtime::pool_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Unclaimed tasks across all registered batches plus the raw
    /// speculative lane.
    pub queue_depth: usize,
    /// Tasks currently executing (pool workers and dispatcher
    /// caller-help combined).
    pub busy_slots: usize,
    /// Batches registered and not yet fully finished.
    pub active_batches: usize,
    /// Tasks in flight per tenant, sorted by tenant name.
    pub per_tenant_inflight: Vec<(String, usize)>,
}

/// A persistent worker pool: `parallelism` threads spawned **once** at
/// construction and reused by every [`WorkerPool::run_tasks`] call.
///
/// Semantics are identical to the transient [`run_tasks`] — same
/// claim/slot algorithm, same inline fast path for `parallelism == 1`
/// or a single task, same panic propagation — so a job produces
/// byte-identical output whichever mode executes it. The difference is
/// purely operational: a long-lived [`crate::runtime::Runtime`] runs
/// many workflows back to back without paying a thread spawn/join per
/// job phase, and **concurrent** dispatches from different threads
/// interleave task-by-task under the pool's [`SchedulingPolicy`]
/// instead of serializing batch-by-batch.
///
/// Do not call [`WorkerPool::run_tasks`] from inside one of the pool's
/// own tasks: the outer call holds workers that the inner call would
/// need, and the pool does not grow.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("threads_spawned", &self.handles.len())
            .field("tasks_executed", &self.tasks_executed())
            .field("policy", &self.shared.policy)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `parallelism` task slots under the default
    /// [`SchedulingPolicy::Fifo`].
    ///
    /// With `parallelism == 1` no OS thread is spawned at all: every
    /// dispatch runs inline on the caller, exactly like the transient
    /// path (fast unit tests, clean stack traces).
    ///
    /// # Panics
    /// If `parallelism` is zero.
    pub fn new(parallelism: usize) -> Self {
        Self::with_policy(parallelism, SchedulingPolicy::default())
    }

    /// [`WorkerPool::new`] with an explicit admission policy.
    ///
    /// # Panics
    /// If `parallelism` is zero.
    pub fn with_policy(parallelism: usize, policy: SchedulingPolicy) -> Self {
        assert!(parallelism > 0, "parallelism must be at least 1");
        let shared = Arc::new(PoolShared {
            sched: Mutex::new(Scheduler {
                direct: VecDeque::new(),
                batches: Vec::new(),
                next_seq: 0,
                busy: 0,
                inflight: BTreeMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            tasks_executed: AtomicU64::new(0),
            policy,
        });
        let handles = if parallelism == 1 {
            Vec::new()
        } else {
            (0..parallelism)
                .map(|slot| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_main(&shared, slot))
                })
                .collect()
        };
        Self {
            shared,
            threads: parallelism,
            handles,
        }
    }

    /// The configured parallelism (task slots).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool's admission policy.
    pub fn scheduling_policy(&self) -> SchedulingPolicy {
        self.shared.policy
    }

    /// OS threads this pool spawned over its lifetime. Constant after
    /// construction (`parallelism`, or 0 for the inline single-slot
    /// pool) — the reuse guarantee tests pin.
    pub fn threads_spawned(&self) -> usize {
        self.handles.len()
    }

    /// Tasks executed through the shared scheduler so far. Grows with
    /// every pooled dispatch; stays 0 for inline execution.
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of the scheduler: queue depth, busy
    /// slots, and per-tenant inflight counts. Consistent (taken under
    /// the scheduler lock) but immediately stale — use it for
    /// backpressure heuristics, not invariants.
    pub fn stats(&self) -> PoolStats {
        let sched = lock_unpoisoned(&self.shared.sched);
        PoolStats {
            queue_depth: sched.queue_depth(),
            busy_slots: sched.busy,
            active_batches: sched.batches.len(),
            per_tenant_inflight: sched
                .inflight
                .iter()
                .filter(|(_, n)| **n > 0)
                .map(|(t, n)| (t.to_string(), *n))
                .collect(),
        }
    }

    /// Runs `count` tasks produced by `f(task_index)` on the pool's
    /// workers and returns results in task order — the persistent-pool
    /// twin of the module-level [`run_tasks`].
    ///
    /// Blocks until every task completed; a panicking task is
    /// propagated to the caller after the remaining tasks finished
    /// (workers themselves survive).
    pub fn run_tasks<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_tasks_capped(count, usize::MAX, f)
    }

    /// Like [`WorkerPool::run_tasks`], but uses at most `cap` task
    /// slots concurrently — a per-dispatch parallelism override that
    /// never spawns or retires threads. `cap == 1` runs inline on the
    /// caller, like a single-slot pool. Results are byte-identical at
    /// any cap.
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn run_tasks_capped<T, F>(&self, count: usize, cap: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_tasks_capped_ctx(count, cap, &Tracer::off(), |i, _ctx| f(i))
    }

    /// [`WorkerPool::run_tasks_capped`] with per-task scheduling
    /// context and slot lifecycle events — see [`run_tasks_ctx`]. The
    /// public entry points delegate here with a disabled tracer and no
    /// batch tag.
    pub(crate) fn run_tasks_capped_ctx<T, F>(
        &self,
        count: usize,
        cap: usize,
        tracer: &Tracer,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, TaskCtx) -> T + Sync,
    {
        self.run_tasks_tagged_ctx(count, cap, tracer, BatchTag::untagged(), f)
    }

    /// The full dispatch entry: registers the `count` tasks as one
    /// tagged batch on the shared scheduler, helps execute it from the
    /// calling thread, and blocks until every task finished.
    ///
    /// Concurrent callers (different tenants/workflows) interleave at
    /// task granularity per the pool's [`SchedulingPolicy`]; outputs
    /// are byte-identical to sequential execution because results are
    /// index-addressed per batch.
    pub(crate) fn run_tasks_tagged_ctx<T, F>(
        &self,
        count: usize,
        cap: usize,
        tracer: &Tracer,
        tag: BatchTag,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, TaskCtx) -> T + Sync,
    {
        assert!(cap > 0, "parallelism cap must be at least 1");
        if count == 0 {
            return Vec::new();
        }
        if self.handles.is_empty() || count == 1 || cap == 1 {
            // Inline execution bypasses the scheduler entirely: zero
            // scheduling delay by construction, no pool events, and
            // `tasks_executed` intentionally stays untouched.
            return (0..count).map(|i| f(i, TaskCtx::default())).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let slots_ref = &slots;
        let f = &f;
        let body = move |i: usize, ctx: TaskCtx| {
            let result = f(i, ctx);
            // Poison-tolerant: the guarded value is a write-once slot,
            // valid at every instruction boundary, so a panic elsewhere
            // must not escalate to a double-panic abort here.
            let prev = lock_unpoisoned(&slots_ref[i]).replace(result);
            assert!(prev.is_none(), "slot {i} written twice");
        };
        // SAFETY: the erased runner borrows `body` (and through it
        // `slots` and `f`) from this stack frame. The erasure never
        // outlives them because this function blocks on the batch's
        // completion fence below — `done.finished == count`, reached
        // only after every claimed task fully returned (panic paths
        // included, via per-task catch_unwind) — before the frame is
        // torn down.
        let runner = unsafe { RawRunner::erase(&body) };
        let seq = {
            let mut sched = lock_unpoisoned(&self.shared.sched);
            let seq = sched.next_seq;
            sched.next_seq += 1;
            seq
        };
        let batch = Arc::new(BatchShared {
            seq,
            tag,
            count,
            cap,
            enqueued: Instant::now(),
            tracer: tracer.clone(),
            runner,
            next: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            admitted: AtomicBool::new(false),
            done: Mutex::new(BatchDone::default()),
            done_cv: Condvar::new(),
        });
        {
            let mut sched = lock_unpoisoned(&self.shared.sched);
            sched.batches.push(Arc::clone(&batch));
            if !batch.tag.workflow.is_empty() {
                tracer.emit_with(None, || TraceEventData::StageReady {
                    tenant: batch.tag.tenant.to_string(),
                    workflow: batch.tag.workflow.to_string(),
                    stage: batch.tag.stage,
                    tasks: count,
                });
            }
            tracer.emit_with(None, || TraceEventData::TasksEnqueued {
                tasks: count,
                queue_depth: sched.queue_depth(),
            });
            self.shared.work_ready.notify_all();
        }
        // Caller-help: claim tasks from our own batch (never another
        // tenant's — this thread must stay available to *its* caller)
        // until the batch is fully claimed or cap-limited.
        loop {
            let claim = {
                let mut sched = lock_unpoisoned(&self.shared.sched);
                let next = batch.next.load(Ordering::Relaxed);
                if next < count && batch.running.load(Ordering::Relaxed) < cap {
                    claim_task(&mut sched, &batch);
                    Some((next, !batch.admitted.swap(true, Ordering::Relaxed)))
                } else {
                    None
                }
            };
            match claim {
                Some((i, first)) => {
                    self.shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
                    execute_batch_task(&self.shared, &batch, i, first, self.threads);
                }
                None => break,
            }
        }
        // The borrow fence: wait for every task of the batch.
        let panic = {
            let mut done = lock_unpoisoned(&batch.done);
            while done.finished < count {
                done = batch
                    .done_cv
                    .wait(done)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            done.panic.take()
        };
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| panic!("task {i} produced no result"))
            })
            .collect()
    }

    /// Number of OS worker threads currently servicing the queue (0
    /// for the inline single-slot pool).
    pub(crate) fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues `copies` erased clones of `body` on the pool's raw
    /// lane without any completion bookkeeping of its own — the
    /// building block the speculative dispatcher
    /// ([`crate::fault::run_speculative`]) uses to run its own
    /// work-queue loops on pool threads. Raw-lane tasks are served
    /// before batch tasks.
    ///
    /// # Safety
    /// `body` may borrow the caller's stack frame. The caller MUST NOT
    /// return (or otherwise invalidate those borrows) until it has
    /// observed that every enqueued copy fully returned — panic paths
    /// included — via its own fence (e.g. a pending count decremented
    /// by a drop guard inside `body`).
    pub(crate) unsafe fn enqueue_fenced<'env>(&self, copies: usize, body: &'env (dyn Fn() + Sync)) {
        {
            let mut sched = lock_unpoisoned(&self.shared.sched);
            for _ in 0..copies {
                let task: Box<dyn FnOnce() + Send + 'env> = Box::new(body);
                // SAFETY: delegated to the caller per this function's
                // contract — the fence outlives every enqueued copy.
                let task: PoolTask = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, PoolTask>(task)
                };
                sched.direct.push_back(task);
            }
        }
        self.shared.work_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut sched = lock_unpoisoned(&self.shared.sched);
            sched.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker panic would already have been propagated to the
            // dispatcher; a join error here means a task panicked in a
            // way catch_unwind cannot contain (abort), so unwrapping
            // is unreachable in practice.
            let _ = handle.join();
        }
    }
}

/// Records a claim on `batch` in the scheduler-wide accounting. Must
/// run under the scheduler lock, right before executing the task.
fn claim_task(sched: &mut Scheduler, batch: &BatchShared) {
    batch.next.fetch_add(1, Ordering::Relaxed);
    batch.running.fetch_add(1, Ordering::Relaxed);
    sched.busy += 1;
    *sched
        .inflight
        .entry(Arc::clone(&batch.tag.tenant))
        .or_insert(0) += 1;
}

/// Estimated remaining work of a batch: the weight hint scaled by the
/// unclaimed fraction, or the unclaimed task count when unweighted.
/// Mixed-unit by design — weighted batches compare in comparison
/// pairs, unweighted ones in tasks — which biases SRW toward small
/// untagged dispatches; acceptable, since those are short by
/// construction.
fn remaining_work(batch: &BatchShared) -> u64 {
    let remaining = batch
        .count
        .saturating_sub(batch.next.load(Ordering::Relaxed)) as u64;
    if batch.tag.weight > 0 {
        (batch.tag.weight / batch.count as u64)
            .max(1)
            .saturating_mul(remaining)
    } else {
        remaining
    }
}

/// Picks the next claimable batch per `policy` (lower key wins; `seq`
/// breaks ties, so every policy degenerates to FIFO among equals).
/// Returns the claimed `(batch, task_index, first_claim)` or `None`
/// when nothing is claimable.
fn claim_batch_task(
    sched: &mut Scheduler,
    policy: SchedulingPolicy,
) -> Option<(Arc<BatchShared>, usize, bool)> {
    let mut best: Option<((u64, u64), usize)> = None;
    for (idx, b) in sched.batches.iter().enumerate() {
        let next = b.next.load(Ordering::Relaxed);
        if next >= b.count || b.running.load(Ordering::Relaxed) >= b.cap {
            continue;
        }
        let key = match policy {
            SchedulingPolicy::Fifo => (0, b.seq),
            SchedulingPolicy::FairShare => (
                sched.inflight.get(&b.tag.tenant).copied().unwrap_or(0) as u64,
                b.seq,
            ),
            SchedulingPolicy::ShortestRemainingWork => (remaining_work(b), b.seq),
        };
        if best.is_none_or(|(bk, _)| key < bk) {
            best = Some((key, idx));
        }
    }
    let (_, idx) = best?;
    let batch = Arc::clone(&sched.batches[idx]);
    let i = batch.next.load(Ordering::Relaxed);
    claim_task(sched, &batch);
    let first = !batch.admitted.swap(true, Ordering::Relaxed);
    Some((batch, i, first))
}

/// Runs claimed task `i` of `batch` on `slot` and performs the full
/// completion handshake. Shared by workers and dispatcher caller-help
/// (which passes `slot == pool parallelism`, the "caller lane").
///
/// Trace emissions are panic-isolated so a misbehaving sink can never
/// unwind past the dispatch fence (which would invalidate borrows
/// while tasks still run).
fn execute_batch_task(
    shared: &PoolShared,
    batch: &Arc<BatchShared>,
    i: usize,
    first: bool,
    slot: usize,
) {
    if first && !batch.tag.workflow.is_empty() {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            batch
                .tracer
                .emit_with(None, || TraceEventData::StageAdmitted {
                    tenant: batch.tag.tenant.to_string(),
                    workflow: batch.tag.workflow.to_string(),
                    stage: batch.tag.stage,
                });
        }));
    }
    let _ = catch_unwind(AssertUnwindSafe(|| {
        batch
            .tracer
            .emit_with(Some(slot), || TraceEventData::SlotAcquired {
                tenant: Some(batch.tag.tenant.to_string()),
            });
    }));
    let ctx = TaskCtx {
        slot,
        queue_wait: batch.enqueued.elapsed(),
    };
    // SAFETY: this task was claimed from a live batch; the dispatcher
    // cannot pass its fence (and tear down the borrowed frame) before
    // the `done.finished` increment below.
    let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { batch.runner.invoke(i, ctx) }));
    let _ = catch_unwind(AssertUnwindSafe(|| {
        batch.tracer.emit(Some(slot), TraceEventData::SlotReleased);
    }));
    {
        let mut sched = lock_unpoisoned(&shared.sched);
        sched.busy -= 1;
        batch.running.fetch_sub(1, Ordering::Relaxed);
        let finished = batch.finished.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(n) = sched.inflight.get_mut(&batch.tag.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                sched.inflight.remove(&batch.tag.tenant);
            }
        }
        if finished == batch.count {
            sched.batches.retain(|b| b.seq != batch.seq);
        }
    }
    // A completion can free cap room (making this batch claimable
    // again) — wake sleeping workers.
    shared.work_ready.notify_all();
    // The dispatcher fence handshake: record the panic BEFORE the
    // increment that can release the fence, then touch nothing of the
    // batch besides dropping our Arc.
    let mut done = lock_unpoisoned(&batch.done);
    if let Err(payload) = outcome {
        // First panic wins.
        done.panic.get_or_insert(payload);
    }
    done.finished += 1;
    if done.finished == batch.count {
        batch.done_cv.notify_all();
    }
}

fn worker_main(shared: &PoolShared, slot: usize) {
    enum Work {
        Direct(PoolTask),
        Batch(Arc<BatchShared>, usize, bool),
    }
    loop {
        let work = {
            let mut sched = lock_unpoisoned(&shared.sched);
            loop {
                if let Some(task) = sched.direct.pop_front() {
                    sched.busy += 1;
                    break Work::Direct(task);
                }
                if let Some((batch, i, first)) = claim_batch_task(&mut sched, shared.policy) {
                    break Work::Batch(batch, i, first);
                }
                if sched.shutdown {
                    return;
                }
                sched = shared
                    .work_ready
                    .wait(sched)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Count BEFORE running: the task body performs the dispatch's
        // completion handshake, so incrementing afterwards would let
        // `run_tasks` return while the counter still misses the tasks
        // it just ran.
        shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
        match work {
            Work::Direct(task) => {
                // Raw-lane tasks contain their own catch_unwind; this
                // outer guard only keeps the worker alive if that
                // bookkeeping itself ever panicked.
                let _ = catch_unwind(AssertUnwindSafe(task));
                lock_unpoisoned(&shared.sched).busy -= 1;
            }
            Work::Batch(batch, i, first) => {
                execute_batch_task(shared, &batch, i, first, slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        // Make later tasks finish earlier by sleeping inversely.
        let out = run_tasks(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i as u64) * 2));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn sequential_path_matches_parallel_path() {
        let seq = run_tasks(20, 1, |i| i * i);
        let par = run_tasks(20, 6, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_tasks(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<u8> = run_tasks(0, 4, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_panics() {
        let _ = run_tasks(1, 0, |i| i);
    }

    #[test]
    fn worker_pool_matches_transient_results() {
        let pool = WorkerPool::new(4);
        for count in [0usize, 1, 2, 7, 100] {
            let pooled = pool.run_tasks(count, |i| i * 3 + 1);
            let transient = run_tasks(count, 4, |i| i * 3 + 1);
            assert_eq!(pooled, transient, "count {count}");
        }
    }

    #[test]
    fn worker_pool_reuses_threads_across_dispatches() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.threads_spawned(), 3);
        let before = pool.tasks_executed();
        for round in 0..5 {
            let out = pool.run_tasks(10, |i| i + round);
            assert_eq!(out.len(), 10);
            assert_eq!(
                pool.threads_spawned(),
                3,
                "no new threads may appear per dispatch"
            );
        }
        assert!(
            pool.tasks_executed() > before,
            "pooled dispatches must run through the shared scheduler"
        );
    }

    #[test]
    fn single_slot_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads_spawned(), 0);
        let caller = std::thread::current().id();
        let ids = pool.run_tasks(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
        assert_eq!(pool.tasks_executed(), 0, "inline path bypasses the queue");
    }

    #[test]
    fn worker_pool_tasks_can_borrow_the_caller_stack() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..50).collect();
        let doubled = pool.run_tasks(data.len(), |i| data[i] * 2);
        assert_eq!(doubled[49], 98);
    }

    #[test]
    fn worker_pool_propagates_task_panics_and_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks(8, |i| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate to the dispatcher");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("exploded"), "got {msg:?}");
        // The pool stays usable after a panicking dispatch.
        assert_eq!(pool.run_tasks(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_slot_pool_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn capped_dispatch_matches_uncapped_results_without_new_threads() {
        let pool = WorkerPool::new(4);
        let spawned = pool.threads_spawned();
        for cap in [1usize, 2, 3, 4, 99] {
            let capped = pool.run_tasks_capped(20, cap, |i| i * 7);
            let uncapped = pool.run_tasks(20, |i| i * 7);
            assert_eq!(capped, uncapped, "cap {cap}");
            assert_eq!(pool.threads_spawned(), spawned, "cap {cap} spawned threads");
        }
    }

    #[test]
    fn cap_of_one_runs_inline_on_the_caller() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let ids = pool.run_tasks_capped(6, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn zero_cap_panics() {
        let pool = WorkerPool::new(2);
        let _ = pool.run_tasks_capped(4, 0, |i| i);
    }

    #[test]
    fn results_identical_under_every_policy() {
        let expected: Vec<usize> = (0..50).map(|i| i * 2).collect();
        for policy in [
            SchedulingPolicy::Fifo,
            SchedulingPolicy::FairShare,
            SchedulingPolicy::ShortestRemainingWork,
        ] {
            let pool = WorkerPool::with_policy(4, policy);
            assert_eq!(pool.run_tasks(50, |i| i * 2), expected, "policy {policy:?}");
        }
    }

    #[test]
    fn concurrent_dispatches_from_many_threads_are_isolated() {
        let pool = WorkerPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..3 {
                        let out = pool.run_tasks_tagged_ctx(
                            12,
                            usize::MAX,
                            &Tracer::off(),
                            BatchTag::new(format!("tenant-{t}"), "wf", round, 0),
                            |i, _| i * t + round,
                        );
                        let expected: Vec<usize> = (0..12).map(|i| i * t + round).collect();
                        assert_eq!(out, expected, "tenant {t} round {round}");
                    }
                });
            }
        });
        // All batches drained; the scheduler is back to idle.
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn stats_reports_inflight_during_dispatch() {
        let pool = WorkerPool::new(2);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let pool_ref = &pool;
            let release_ref = &release;
            scope.spawn(move || {
                pool_ref.run_tasks_tagged_ctx(
                    4,
                    usize::MAX,
                    &Tracer::off(),
                    BatchTag::new("tenant-a", "wf", 0, 0),
                    |_, _| {
                        while !release_ref.load(Ordering::Relaxed) {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                    },
                );
            });
            // Wait until the scheduler shows the batch in flight.
            let stats = loop {
                let stats = pool.stats();
                if stats.busy_slots > 0 {
                    break stats;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            };
            assert_eq!(stats.active_batches, 1);
            assert!(
                stats
                    .per_tenant_inflight
                    .iter()
                    .any(|(t, n)| t == "tenant-a" && *n > 0),
                "tenant-a must appear in {stats:?}"
            );
            release.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            pool.stats(),
            PoolStats::default(),
            "idle after the dispatch"
        );
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(SchedulingPolicy::Fifo.name(), "fifo");
        assert_eq!(SchedulingPolicy::FairShare.name(), "fair_share");
        assert_eq!(
            SchedulingPolicy::ShortestRemainingWork.name(),
            "shortest_remaining_work"
        );
    }
}
