//! A minimal deterministic work pool for running homogeneous tasks.
//!
//! Workers pull task indices from an atomic cursor; results land in
//! index-addressed slots, so the result vector is always in task order
//! regardless of completion order — the keystone of the engine's
//! determinism guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `count` tasks produced by `f(task_index)` on up to
/// `parallelism` worker threads and returns results in task order.
///
/// With `parallelism == 1` everything runs on the calling thread (no
/// spawn overhead), which keeps unit tests fast and stack traces clean.
pub fn run_tasks<T, F>(count: usize, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(parallelism > 0, "parallelism must be at least 1");
    if count == 0 {
        return Vec::new();
    }
    if parallelism == 1 || count == 1 {
        return (0..count).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = parallelism.min(count);
    // std scoped threads: a worker panic propagates out of the scope
    // after all threads joined, so the slot-unwrap below only ever runs
    // on a fully successful pool.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                let prev = slots[i]
                    .lock()
                    .expect("no other writer can have panicked while holding slot {i}")
                    .replace(result);
                assert!(prev.is_none(), "slot {i} written twice");
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("slot lock cannot be poisoned after a clean scope exit")
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_task_order() {
        // Make later tasks finish earlier by sleeping inversely.
        let out = run_tasks(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i as u64) * 2));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn sequential_path_matches_parallel_path() {
        let seq = run_tasks(20, 1, |i| i * i);
        let par = run_tasks(20, 6, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_tasks(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<u8> = run_tasks(0, 4, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_panics() {
        let _ = run_tasks(1, 0, |i| i);
    }
}
