//! # mr-engine — an in-process MapReduce runtime
//!
//! A from-scratch implementation of the MapReduce execution model of
//! Dean & Ghemawat (OSDI 2004) as refined by Hadoop, providing exactly
//! the extension points that "Load Balancing for MapReduce-based Entity
//! Resolution" (Kolb, Thor, Rahm; ICDE 2012) relies on:
//!
//! * user-defined [`Mapper`] and [`Reducer`] functions over key/value
//!   pairs, executed in parallel over `m` map tasks and `r` reduce
//!   tasks;
//! * a [`Partitioner`] (`part`) that may inspect only *part* of a
//!   composite key to route map output to reduce tasks;
//! * a sort comparator (`comp`) ordering all keys of a reduce task;
//! * a grouping comparator (`group`) that may be *coarser* than the
//!   sort order, so a single `reduce` call can observe multiple
//!   distinct keys (the key is exposed per value, Hadoop-style);
//! * an optional per-map-task [`Combiner`];
//! * map-side *additional output* to a simulated distributed file
//!   system ([`Mapper::Side`]), partition-aligned so a follow-up job
//!   sees the same input partitioning (Algorithm 3 of the paper);
//! * named counters and per-task metrics (records, emitted pairs,
//!   custom counters such as `comparisons`, wall time).
//!
//! The shuffle is **deterministic, fully parallel, and streaming**:
//! every map task partitions, stable-sorts, and (optionally) combines
//! its output buckets on the worker pool; the coordinator only
//! transposes buckets to reduce tasks; and each reduce task streams
//! reduce groups out of a stable k-way heap merge of its runs in
//! map-task order (ties break toward the lower map task), buffering
//! only the current group — never the merged run. Values with equal
//! sort keys therefore arrive in (map task index, emission order) —
//! the property Hadoop exhibits in practice and that the BlockSplit
//! reducer of the paper exploits — while the reduce-side merge buffers
//! only `O(largest group + m)` records beyond the input runs (no
//! second merged-run copy), measured per task by
//! [`TaskMetrics::peak_group_len`] and
//! [`TaskMetrics::peak_resident_records`]. Determinism holds at any
//! level of [`JobBuilder::parallelism`]; see [`engine`] for the full
//! shuffle architecture and [`merge`] for the merge kernels.
//!
//! ```
//! use mr_engine::prelude::*;
//!
//! // Word count: the "hello world" of MapReduce.
//! let mapper = ClosureMapper::new(|_k: &(), line: &String, ctx: &mut MapContext<String, u64, ()>| {
//!     for w in line.split_whitespace() {
//!         ctx.emit(w.to_string(), 1);
//!     }
//! });
//! let reducer = ClosureReducer::new(|group: Group<'_, String, u64>, ctx: &mut ReduceContext<String, u64>| {
//!     let total: u64 = group.values().sum();
//!     ctx.emit(group.key().clone(), total);
//! });
//! let input = partition_evenly(
//!     vec![((), "a b a".to_string()), ((), "b a".to_string())], 2);
//! let out = Job::builder("wordcount", mapper, reducer)
//!     .reduce_tasks(2)
//!     .build()
//!     .run(input)
//!     .unwrap();
//! let mut counts = out.into_records();
//! counts.sort();
//! assert_eq!(counts, vec![("a".into(), 3), ("b".into(), 2)]);
//! ```

// A generic MapReduce surface is inherently type-heavy: mappers carry
// five type parameters and closures reference them all. Aliasing each
// shape would obscure, not clarify.
#![allow(clippy::type_complexity)]

pub mod adapters;
pub mod combiner;
pub mod comparator;
pub mod counters;
pub mod engine;
pub mod error;
pub mod fault;
pub mod input;
pub mod json;
pub mod mapper;
pub mod merge;
pub mod metrics;
pub mod partitioner;
pub mod pool;
pub mod reducer;
pub mod runtime;
pub mod spill;
pub mod trace;
pub mod workflow;

pub use adapters::{ClosureMapper, ClosureReducer};
pub use combiner::Combiner;
pub use comparator::{natural_order, KeyCmp};
pub use counters::CounterSet;
pub use engine::{Job, JobBuilder, JobOutput};
pub use error::MrError;
pub use fault::{FaultAction, FaultKind, FaultPlan, FaultPolicy, InjectedFault, TaskError};
pub use input::{partition_evenly, partition_round_robin, Partitions};
pub use mapper::{MapContext, MapTaskInfo, Mapper};
pub use merge::{merge_sorted_runs, ClonedRunIter, GroupStream};
pub use metrics::{JobMetrics, TaskKind, TaskMetrics};
pub use partitioner::{FnPartitioner, HashPartitioner, Partitioner};
pub use pool::{BatchTag, PoolStats, SchedulingPolicy, WorkerPool};
pub use reducer::{Group, ReduceContext, ReduceTaskInfo, Reducer, SumReducer};
pub use runtime::{Runtime, RuntimeConfig};
pub use trace::{
    CountingSink, JsonlSink, TraceEvent, TraceEventData, TraceRecorder, TraceReport, TraceSink,
};
pub use workflow::{ensure_same_shape, NodeId, StageGraph, Workflow, WorkflowMetrics};

/// Convenience glob-import for downstream crates and examples.
pub mod prelude {
    pub use crate::adapters::{ClosureMapper, ClosureReducer};
    pub use crate::comparator::natural_order;
    pub use crate::counters::CounterSet;
    pub use crate::engine::{Job, JobBuilder, JobOutput};
    pub use crate::error::MrError;
    pub use crate::fault::{FaultKind, FaultPlan, FaultPolicy, TaskError};
    pub use crate::input::{partition_evenly, partition_round_robin, Partitions};
    pub use crate::mapper::{MapContext, MapTaskInfo, Mapper};
    pub use crate::metrics::{JobMetrics, TaskKind, TaskMetrics};
    pub use crate::partitioner::{FnPartitioner, HashPartitioner, Partitioner};
    pub use crate::pool::{PoolStats, SchedulingPolicy, WorkerPool};
    pub use crate::reducer::{Group, ReduceContext, ReduceTaskInfo, Reducer, SumReducer};
    pub use crate::runtime::{Runtime, RuntimeConfig};
    pub use crate::trace::{TraceEvent, TraceEventData, TraceRecorder, TraceReport, TraceSink};
    pub use crate::workflow::{StageGraph, Workflow, WorkflowMetrics};
}
