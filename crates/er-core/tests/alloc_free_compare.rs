//! Proves the arena-backed compare loop is allocation-free after
//! warm-up: once every entity of a block has been interned, an entire
//! all-pairs `matches_handles` sweep performs **zero** heap
//! allocations.
//!
//! A single `#[test]` drives the whole file — integration tests in one
//! binary may run on multiple threads, which would make a global
//! allocation counter racy across tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use er_core::{Entity, MatchRule, Matcher, MatcherCache};

/// Counts every allocation routed through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn corpus() -> Vec<Entity> {
    // Titles long and varied enough to exercise the banded DP, the
    // token measures, and the set measures; one entity lacks a title
    // to cover the missing-attribute path.
    let titles = [
        "canon eos 5d mark iii body kit",
        "canon eos 5d mark ii body kit",
        "nikon coolpix s3300 compact camera",
        "nikon coolpix s3200 compact camera",
        "olympus om-d e-m5 micro four thirds",
        "sony alpha a7 full frame mirrorless",
        "sony alpha a7r full frame mirrorless",
        "panasonic lumix dmc-gh3 body only",
        "fujifilm x-pro1 rangefinder style",
        "pentax k-5 ii dslr weather sealed",
        "leica m9 rangefinder digital",
        "samsung nx200 compact system camera",
    ];
    let mut entities: Vec<Entity> = titles
        .iter()
        .enumerate()
        .map(|(i, t)| Entity::new(i as u64, [("title", *t), ("brand", "whatever corp")]))
        .collect();
    entities.push(Entity::new(99, [("brand", "untitled gmbh")]));
    entities
}

#[test]
fn arena_compare_loop_allocates_nothing_after_warm_up() {
    // A multi-rule matcher exercises every measure family through the
    // weighted path: edit distance (chars + DP scratch), Jaro-Winkler
    // (match scratch), Monge-Elkan (nested token views), Jaccard /
    // n-gram (hashed sets), cosine (hashed counts).
    let matcher = Arc::new(Matcher::new(
        vec![
            MatchRule::new("title", Arc::new(er_core::NormalizedLevenshtein)).with_weight(2.0),
            MatchRule::new("title", Arc::new(er_core::JaroWinkler::default())),
            MatchRule::new("title", Arc::new(er_core::MongeElkan::default())),
            MatchRule::new("title", Arc::new(er_core::Jaccard)),
            MatchRule::new("title", Arc::new(er_core::NGram::trigram())),
            MatchRule::new("brand", Arc::new(er_core::CosineTokens)),
        ],
        0.5,
    ));
    let entities = corpus();
    let mut cache = MatcherCache::new(Arc::clone(&matcher));

    // Warm-up: intern every entity, then run one full all-pairs sweep
    // so thread-local scratch buffers grow to their high-water marks.
    let handles: Vec<_> = entities.iter().map(|e| cache.handle(e)).collect();
    let mut warm_decisions = Vec::with_capacity(handles.len() * handles.len());
    for i in 0..handles.len() {
        for j in (i + 1)..handles.len() {
            warm_decisions.push(cache.matches_handles(&handles[i], &handles[j]));
        }
    }

    // Measured pass: the identical sweep must not touch the allocator.
    // The result buffer is allocated before the snapshot so only the
    // compare loop itself is counted.
    let mut hot_decisions = Vec::with_capacity(warm_decisions.len());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..handles.len() {
        for j in (i + 1)..handles.len() {
            hot_decisions.push(cache.matches_handles(&handles[i], &handles[j]));
        }
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - before;

    // The decision comparison happens after measurement so its own
    // bookkeeping cannot pollute the counter; `hot_decisions` was
    // pre-sized above for the same reason.
    assert_eq!(
        during, 0,
        "arena compare loop allocated {during} times after warm-up"
    );
    assert_eq!(
        warm_decisions
            .iter()
            .map(|d| d.map(f64::to_bits))
            .collect::<Vec<_>>(),
        hot_decisions
            .iter()
            .map(|d| d.map(f64::to_bits))
            .collect::<Vec<_>>(),
        "hot pass must reproduce warm-up decisions bit-exactly"
    );
    // Sanity: the sweep actually compared things both ways.
    assert!(warm_decisions.iter().any(|d| d.is_some()));
    assert!(warm_decisions.iter().any(|d| d.is_none()));
}
