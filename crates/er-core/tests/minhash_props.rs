//! Property suite for the MinHash/banding primitives backing the
//! er-lsh blocking family:
//!
//! * signatures are a pure function of (shingle *set*, seed) —
//!   deterministic across hasher instances, invariant under shingle
//!   permutation and duplication — so band digests (and hence LSH
//!   blocking keys) are stable across any map-task assignment or
//!   parallelism level;
//! * the Jaccard estimator is probabilistically sound: estimates stay
//!   in `[0, 1]` and, with 256 hash functions, land within a generous
//!   error band of the true set Jaccard (deterministic shim seeding
//!   keeps this reproducible);
//! * the banding S-curve is a proper probability, monotone in
//!   similarity, and consistent with its `(bands, rows)` structure.

use std::collections::BTreeSet;

use er_core::minhash::{band_hash, banding_probability, estimate_jaccard, MinHasher};
use proptest::prelude::*;

fn true_jaccard(a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

proptest! {
    /// Same shingle multiset (in any order, with any duplication),
    /// same seed → the same signature and the same digest in every
    /// band. This is the determinism the MR signature job relies on:
    /// an entity's band keys cannot depend on which map task sees it.
    #[test]
    fn signatures_are_order_and_duplication_invariant(
        shingles in proptest::collection::vec(0u64..100_000, 1..60),
        seed in 0u64..1_000_000,
        dup in 0usize..8,
    ) {
        let hasher = MinHasher::new(16, seed);
        let reference = hasher.signature(&shingles);

        // Reverse the order and append duplicated elements.
        let mut mutated: Vec<u64> = shingles.iter().rev().copied().collect();
        mutated.extend(shingles.iter().take(dup).copied());
        let fresh = MinHasher::new(16, seed);
        let again = fresh.signature(&mutated);
        prop_assert_eq!(&reference, &again);

        for band in 0..8 {
            prop_assert_eq!(
                band_hash(&reference, band, 2),
                band_hash(&again, band, 2),
                "band {} digest must be stable",
                band
            );
        }
    }

    /// Different seeds give (almost always) different hash families;
    /// a colliding full signature across seeds would break the
    /// independence assumption behind the banding S-curve.
    #[test]
    fn seeds_select_distinct_hash_families(
        shingles in proptest::collection::vec(0u64..100_000, 4..40),
        seed in 0u64..1_000_000,
    ) {
        let a = MinHasher::new(32, seed).signature(&shingles);
        let b = MinHasher::new(32, seed ^ 0xDEAD_BEEF).signature(&shingles);
        prop_assert!(a != b, "32 slots agreeing across seeds is ~impossible");
    }

    /// The estimator is a proportion of agreeing slots: always within
    /// `[0, 1]`, exactly 1 for identical input sets.
    #[test]
    fn estimates_are_proportions(
        shingles in proptest::collection::vec(0u64..100_000, 1..60),
        seed in 0u64..1_000_000,
    ) {
        let hasher = MinHasher::new(24, seed);
        let sig = hasher.signature(&shingles);
        prop_assert_eq!(estimate_jaccard(&sig, &sig), 1.0);
        let other = hasher.signature(&shingles[..1.max(shingles.len() / 2)]);
        let est = estimate_jaccard(&sig, &other);
        prop_assert!((0.0..=1.0).contains(&est));
    }

    /// With 256 hash functions the MinHash estimate concentrates
    /// around the true Jaccard (σ = √(J(1−J)/256) ≤ 0.032); a 0.2
    /// tolerance is > 6σ, and the shim's deterministic seeding makes
    /// the check reproducible run over run.
    #[test]
    fn estimate_tracks_true_jaccard(
        a in proptest::collection::vec(0u64..500, 5..80),
        b in proptest::collection::vec(0u64..500, 5..80),
        seed in 0u64..1_000_000,
    ) {
        let sa: BTreeSet<u64> = a.iter().copied().collect();
        let sb: BTreeSet<u64> = b.iter().copied().collect();
        let truth = true_jaccard(&sa, &sb);
        let hasher = MinHasher::new(256, seed);
        let va: Vec<u64> = sa.iter().copied().collect();
        let vb: Vec<u64> = sb.iter().copied().collect();
        let est = estimate_jaccard(&hasher.signature(&va), &hasher.signature(&vb));
        prop_assert!(
            (est - truth).abs() <= 0.2,
            "estimate {} vs true {} drifted past the 6σ band",
            est,
            truth
        );
    }

    /// The S-curve is a probability, monotone in similarity, and
    /// degenerate cases collapse correctly: s = 1 always collides,
    /// s = 0 never does.
    #[test]
    fn banding_s_curve_is_a_monotone_probability(
        bands in 1usize..40,
        rows in 1usize..12,
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let p_lo = banding_probability(lo, bands, rows);
        let p_hi = banding_probability(hi, bands, rows);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_lo <= p_hi + 1e-12, "must be monotone in s");
        prop_assert_eq!(banding_probability(1.0, bands, rows), 1.0);
        prop_assert_eq!(banding_probability(0.0, bands, rows), 0.0);
        // More bands at fixed rows can only raise the collision odds.
        prop_assert!(
            banding_probability(hi, bands + 1, rows) >= p_hi - 1e-12
        );
    }
}
