//! MinHash signatures and banded locality-sensitive hashing.
//!
//! The third blocking family (after disjoint key blocking and Sorted
//! Neighborhood): entities are shingled into token/character-gram
//! sets, each set is compressed into a [`MinHasher`] signature of
//! `bands · rows` minimum hash values, and the signature is cut into
//! `bands` bands of `rows` values each. Two entities land in the same
//! *bucket* of band `i` when their band-`i` rows hash identically —
//! which happens with probability `s^rows` for Jaccard similarity `s`,
//! so the probability of colliding in *at least one* band follows the
//! classic S-curve `1 − (1 − s^rows)^bands` (see
//! [`banding_probability`]).
//!
//! Everything here is deterministic and platform-independent: shingle
//! hashing reuses the crate's FNV-1a kernels, and the per-row hash
//! functions are derived from a caller-supplied seed via a SplitMix64
//! stream — the same signature is produced for the same text on every
//! run, at every parallelism, on every machine (MR job output must
//! never depend on hasher seeding).

use crate::similarity::{fnv1a_bytes, fnv1a_chars, into_hash_set};

/// How text is cut into the shingle set a signature summarizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShingleScheme {
    /// Overlapping character `n`-grams of the normalized text (the
    /// default, `n = 3`): robust to single-character edits, which
    /// change only `n` of the grams.
    CharGrams(usize),
    /// Whitespace-separated tokens: coarser — one edit replaces a
    /// whole token — but cheaper and natural for long documents.
    Tokens,
}

impl Default for ShingleScheme {
    fn default() -> Self {
        ShingleScheme::CharGrams(3)
    }
}

impl std::fmt::Display for ShingleScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShingleScheme::CharGrams(n) => write!(f, "char{n}"),
            ShingleScheme::Tokens => write!(f, "tokens"),
        }
    }
}

/// The signature slot of an empty shingle set: no shingle ever hashes
/// to it (the minimum over a non-empty set is a mixed hash, which is
/// `u64::MAX` with probability 2⁻⁶⁴ per slot), so empty-text
/// signatures compare equal only to other empty-text signatures.
pub const EMPTY_SLOT: u64 = u64::MAX;

/// Cuts `text` into its shingle *set*: sorted, deduplicated FNV-1a
/// hashes of the scheme's units over the normalized text (lower-cased,
/// whitespace collapsed to single spaces, trimmed).
///
/// Empty or all-whitespace text yields an empty set. Text shorter than
/// a `CharGrams(n)` window yields one shingle covering the whole text.
pub fn shingle_hashes(text: &str, scheme: ShingleScheme) -> Vec<u64> {
    match scheme {
        ShingleScheme::CharGrams(n) => {
            assert!(n >= 1, "character grams need a positive width");
            let mut chars: Vec<char> = Vec::with_capacity(text.len());
            let mut pending_space = false;
            for c in text.trim().chars() {
                if c.is_whitespace() {
                    pending_space = !chars.is_empty();
                    continue;
                }
                if pending_space {
                    chars.push(' ');
                    pending_space = false;
                }
                chars.extend(c.to_lowercase());
            }
            if chars.is_empty() {
                return Vec::new();
            }
            if chars.len() < n {
                return vec![fnv1a_chars(&chars)];
            }
            into_hash_set(chars.windows(n).map(fnv1a_chars).collect())
        }
        ShingleScheme::Tokens => into_hash_set(
            text.split_whitespace()
                .map(|t| fnv1a_bytes(t.to_lowercase().into_bytes()))
                .collect(),
        ),
    }
}

/// SplitMix64 step: advances `state` and returns the next stream
/// value. The standard mixer — full 64-bit avalanche, deterministic.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*state)
}

/// SplitMix64 finalizer: bijective 64-bit avalanche.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A family of `num_hashes` independent hash functions producing
/// MinHash signatures: slot `i` of a signature is the minimum of
/// `h_i(x)` over the shingle set, where `h_i(x) = mix64(x ⊕ salt_i)`
/// and the salts are drawn from a SplitMix64 stream seeded by the
/// caller. Equal seeds give equal families — signatures are stable
/// across runs, machines, and parallelism.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seed: u64,
    salts: Vec<u64>,
}

impl MinHasher {
    /// A family of `num_hashes` functions derived from `seed`.
    ///
    /// # Panics
    /// If `num_hashes` is zero.
    pub fn new(num_hashes: usize, seed: u64) -> Self {
        assert!(num_hashes > 0, "a signature needs at least one hash");
        let mut state = seed;
        let salts = (0..num_hashes).map(|_| splitmix64(&mut state)).collect();
        Self { seed, salts }
    }

    /// Signature length (the number of hash functions).
    pub fn num_hashes(&self) -> usize {
        self.salts.len()
    }

    /// The seed this family was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The MinHash signature of a shingle set: slot `i` holds
    /// `min h_i(x)`. The empty set signs as all-[`EMPTY_SLOT`].
    ///
    /// Order- and multiplicity-insensitive: any permutation or
    /// duplication of `shingles` produces the identical signature.
    pub fn signature(&self, shingles: &[u64]) -> Vec<u64> {
        if shingles.is_empty() {
            return vec![EMPTY_SLOT; self.salts.len()];
        }
        self.salts
            .iter()
            .map(|&salt| {
                shingles
                    .iter()
                    .map(|&x| mix64(x ^ salt))
                    .min()
                    .expect("non-empty shingle set")
            })
            .collect()
    }
}

/// The Jaccard estimate two signatures encode: the fraction of slots
/// that agree. Unbiased with expectation `J(A, B)`; the standard error
/// is `√(J(1−J)/num_hashes)`.
///
/// # Panics
/// If the signatures have different lengths (different families never
/// compare meaningfully).
pub fn estimate_jaccard(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "signatures must share a hash family");
    assert!(!a.is_empty(), "empty signatures carry no estimate");
    let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
    agree as f64 / a.len() as f64
}

/// The banded digest of one band: FNV-1a over the little-endian bytes
/// of signature slots `[band · rows, (band + 1) · rows)`. Two entities
/// share a band-`band` bucket exactly when these digests are equal.
///
/// # Panics
/// If the band's row range exceeds the signature.
pub fn band_hash(signature: &[u64], band: usize, rows: usize) -> u64 {
    assert!(rows >= 1, "a band needs at least one row");
    let start = band * rows;
    assert!(
        start + rows <= signature.len(),
        "band {band} x {rows} rows exceeds a {}-slot signature",
        signature.len()
    );
    fnv1a_bytes(
        signature[start..start + rows]
            .iter()
            .flat_map(|v| v.to_le_bytes()),
    )
}

/// The banding S-curve: the probability that two sets of Jaccard
/// similarity `s` collide in at least one of `bands` bands of `rows`
/// rows — `1 − (1 − s^rows)^bands`. Monotone in `s`; the curve's
/// threshold (steepest point) sits near `(1/bands)^(1/rows)`.
pub fn banding_probability(s: f64, bands: usize, rows: usize) -> f64 {
    assert!(bands >= 1 && rows >= 1, "need at least one band and row");
    let s = s.clamp(0.0, 1.0);
    1.0 - (1.0 - s.powi(rows as i32)).powi(bands as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shingles_normalize_case_and_whitespace() {
        let a = shingle_hashes("Canon  EOS\t5D", ShingleScheme::CharGrams(3));
        let b = shingle_hashes("canon eos 5d", ShingleScheme::CharGrams(3));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let t1 = shingle_hashes("Canon EOS", ShingleScheme::Tokens);
        let t2 = shingle_hashes("eos  canon", ShingleScheme::Tokens);
        assert_eq!(t1, t2, "token sets ignore order");
    }

    #[test]
    fn empty_and_short_text_edge_cases() {
        assert!(shingle_hashes("", ShingleScheme::CharGrams(3)).is_empty());
        assert!(shingle_hashes("  \t ", ShingleScheme::CharGrams(3)).is_empty());
        assert!(shingle_hashes("", ShingleScheme::Tokens).is_empty());
        // Shorter than the window: one whole-text shingle.
        assert_eq!(shingle_hashes("ab", ShingleScheme::CharGrams(3)).len(), 1);
    }

    #[test]
    fn signatures_are_deterministic_and_order_insensitive() {
        let hasher = MinHasher::new(16, 42);
        let shingles = shingle_hashes("canon eos 5d mark iii", ShingleScheme::CharGrams(3));
        let mut reversed = shingles.clone();
        reversed.reverse();
        assert_eq!(hasher.signature(&shingles), hasher.signature(&reversed));
        assert_eq!(
            MinHasher::new(16, 42).signature(&shingles),
            hasher.signature(&shingles),
            "equal seeds give equal families"
        );
        assert_ne!(
            MinHasher::new(16, 43).signature(&shingles),
            hasher.signature(&shingles),
            "different seeds give different families"
        );
    }

    #[test]
    fn empty_set_signs_as_sentinel() {
        let hasher = MinHasher::new(4, 7);
        assert_eq!(hasher.signature(&[]), vec![EMPTY_SLOT; 4]);
    }

    #[test]
    fn identical_sets_estimate_one_disjoint_zero() {
        let hasher = MinHasher::new(64, 1);
        let a = shingle_hashes("alpha beta gamma", ShingleScheme::Tokens);
        let b = shingle_hashes("delta epsilon zeta", ShingleScheme::Tokens);
        assert_eq!(
            estimate_jaccard(&hasher.signature(&a), &hasher.signature(&a)),
            1.0
        );
        assert_eq!(
            estimate_jaccard(&hasher.signature(&a), &hasher.signature(&b)),
            0.0
        );
    }

    #[test]
    fn band_hash_covers_exact_row_ranges() {
        let sig: Vec<u64> = (0..8).collect();
        // Bands of 2 rows: digests of disjoint slot pairs.
        let digests: Vec<u64> = (0..4).map(|b| band_hash(&sig, b, 2)).collect();
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "distinct rows give distinct digests");
        // Equal rows, equal digest.
        let other: Vec<u64> = vec![0, 1, 99, 99, 4, 5, 99, 99];
        assert_eq!(band_hash(&sig, 0, 2), band_hash(&other, 0, 2));
        assert_eq!(band_hash(&sig, 2, 2), band_hash(&other, 2, 2));
        assert_ne!(band_hash(&sig, 1, 2), band_hash(&other, 1, 2));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn band_hash_rejects_out_of_range_bands() {
        let sig: Vec<u64> = (0..8).collect();
        let _ = band_hash(&sig, 4, 2);
    }

    #[test]
    fn banding_probability_is_monotone_s_curve() {
        assert_eq!(banding_probability(0.0, 16, 2), 0.0);
        assert_eq!(banding_probability(1.0, 16, 2), 1.0);
        let lo = banding_probability(0.3, 16, 2);
        let hi = banding_probability(0.8, 16, 2);
        assert!(lo < hi);
        // More bands at fixed rows catch more.
        assert!(banding_probability(0.5, 32, 2) > banding_probability(0.5, 8, 2));
        // More rows at fixed bands demand more agreement.
        assert!(banding_probability(0.5, 8, 8) < banding_probability(0.5, 8, 2));
    }
}
