//! Threshold matching of entity pairs.
//!
//! The hot path of every reduce task is [`Matcher::matches`] over all
//! O(b²) pairs of a block. [`Matcher::prepare`] converts an entity
//! into a [`PreparedEntity`] (one [`Prepared`] form per rule) exactly
//! once; [`Matcher::matches_prepared`] then scores pairs without
//! re-tokenizing. [`MatcherCache`] memoizes prepared entities by
//! [`EntityRef`] for reducers whose groups revisit the same entity
//! (PairRange replicas, multi-pass blocking). In its default arena
//! mode the cache interns every prepared form into a
//! [`PreparedArena`], so the pair loop over [`PreparedHandle`]s
//! performs no heap allocation at all once each entity has been seen
//! once.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::arena::{PreparedArena, PreparedId};
use crate::entity::{Entity, EntityRef};
use crate::similarity::{NormalizedLevenshtein, Prepared, PreparedView, Similarity};

/// One attribute-level comparison: similarity measure over one
/// attribute, with an optional weight for aggregation.
#[derive(Clone)]
pub struct MatchRule {
    /// Attribute whose values are compared.
    pub attribute: String,
    /// The similarity measure.
    pub similarity: Arc<dyn Similarity>,
    /// Relative weight within the aggregated score.
    pub weight: f64,
}

impl MatchRule {
    /// A rule with weight 1.
    pub fn new(attribute: impl Into<String>, similarity: Arc<dyn Similarity>) -> Self {
        Self {
            attribute: attribute.into(),
            similarity,
            weight: 1.0,
        }
    }

    /// Overrides the weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    fn score(&self, a: &Entity, b: &Entity) -> f64 {
        match (a.get(&self.attribute), b.get(&self.attribute)) {
            (Some(va), Some(vb)) => self.similarity.sim(va, vb),
            // A missing attribute contributes zero evidence, which is
            // the conservative choice for deduplication.
            _ => 0.0,
        }
    }
}

impl std::fmt::Debug for MatchRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchRule")
            .field("attribute", &self.attribute)
            .field("similarity", &self.similarity.name())
            .field("weight", &self.weight)
            .finish()
    }
}

/// A weighted-average multi-rule matcher with a decision threshold.
///
/// The paper's configuration is a single rule: normalized edit
/// distance on `title` with threshold `0.8` — see
/// [`Matcher::paper_default`].
#[derive(Clone, Debug)]
pub struct Matcher {
    rules: Vec<MatchRule>,
    threshold: f64,
    /// Cached `Σ weight` — every score divides by it, so it is
    /// computed once at construction, not per pair.
    total_weight: f64,
}

impl Matcher {
    /// Builds a matcher from rules and a threshold in `[0, 1]`.
    ///
    /// # Panics
    /// If `rules` is empty, total weight is zero, or the threshold is
    /// outside `[0, 1]`.
    pub fn new(rules: Vec<MatchRule>, threshold: f64) -> Self {
        assert!(!rules.is_empty(), "a matcher needs at least one rule");
        let total_weight: f64 = rules.iter().map(|r| r.weight).sum();
        assert!(total_weight > 0.0, "total rule weight must be positive");
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be within [0, 1]"
        );
        Self {
            rules,
            threshold,
            total_weight,
        }
    }

    /// The paper's match configuration: edit distance on the title with
    /// a minimal similarity of 0.8.
    pub fn paper_default() -> Self {
        Self::new(
            vec![MatchRule::new("title", Arc::new(NormalizedLevenshtein))],
            0.8,
        )
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Weighted-average similarity of an entity pair.
    pub fn score(&self, a: &Entity, b: &Entity) -> f64 {
        let weighted: f64 = self.rules.iter().map(|r| r.weight * r.score(a, b)).sum();
        weighted / self.total_weight
    }

    /// Returns `Some(score)` iff the pair's score reaches the
    /// threshold.
    pub fn matches(&self, a: &Entity, b: &Entity) -> Option<f64> {
        let s = self.score(a, b);
        (s >= self.threshold).then_some(s)
    }

    /// Preprocesses an entity once for repeated scoring: each rule's
    /// attribute value (if present) is converted into that rule's
    /// similarity measure's [`Prepared`] form.
    pub fn prepare(&self, e: &Entity) -> PreparedEntity {
        PreparedEntity {
            entity_ref: e.entity_ref(),
            values: self
                .rules
                .iter()
                .map(|r| e.get(&r.attribute).map(|v| r.similarity.prepare(v)))
                .collect(),
        }
    }

    /// Weighted-average similarity over prepared entities — bit-exact
    /// with [`Matcher::score`] on the same entities (the string path
    /// is defined in terms of the prepared path).
    ///
    /// # Panics
    /// If either argument was prepared by a matcher with a different
    /// rule list.
    pub fn score_prepared(&self, a: &PreparedEntity, b: &PreparedEntity) -> f64 {
        self.score_values(ValuesRef::Heap(a), ValuesRef::Heap(b))
    }

    /// Threshold decision over prepared entities; `Some(score)` iff
    /// the pair matches.
    ///
    /// For the common single-rule, unit-weight configuration (the
    /// paper's default) the score equals the rule similarity
    /// bit-exactly, so the decision is delegated to the measure's
    /// threshold-aware kernel ([`Similarity::sim_view_at_least`]),
    /// which may abandon hopeless pairs early (banded edit distance).
    /// Decisions and scores are identical to the exact path in all
    /// cases.
    pub fn matches_prepared(&self, a: &PreparedEntity, b: &PreparedEntity) -> Option<f64> {
        self.matches_values(ValuesRef::Heap(a), ValuesRef::Heap(b))
    }

    /// [`Matcher::score_prepared`] over arena-interned entities —
    /// reads the slabs directly, allocating nothing.
    ///
    /// # Panics
    /// If either id came from a different arena or a matcher with a
    /// different rule list.
    pub fn score_arena(&self, arena: &PreparedArena, a: PreparedId, b: PreparedId) -> f64 {
        self.score_values(ValuesRef::Arena(arena, a), ValuesRef::Arena(arena, b))
    }

    /// [`Matcher::matches_prepared`] over arena-interned entities —
    /// the allocation-free form of the O(b²) inner loop.
    ///
    /// # Panics
    /// If either id came from a different arena or a matcher with a
    /// different rule list.
    pub fn matches_arena(
        &self,
        arena: &PreparedArena,
        a: PreparedId,
        b: PreparedId,
    ) -> Option<f64> {
        self.matches_values(ValuesRef::Arena(arena, a), ValuesRef::Arena(arena, b))
    }

    fn score_values(&self, a: ValuesRef<'_>, b: ValuesRef<'_>) -> f64 {
        assert_eq!(
            self.rules.len(),
            a.len(),
            "prepared entity {} does not match this matcher's rules",
            a.entity_ref()
        );
        assert_eq!(
            self.rules.len(),
            b.len(),
            "prepared entity {} does not match this matcher's rules",
            b.entity_ref()
        );
        let weighted: f64 = self
            .rules
            .iter()
            .enumerate()
            .map(|(i, rule)| match (a.value(i), b.value(i)) {
                (Some(pa), Some(pb)) => rule.weight * rule.similarity.sim_view(&pa, &pb),
                // A missing attribute contributes zero evidence, same
                // as the string path.
                _ => 0.0,
            })
            .sum();
        weighted / self.total_weight
    }

    fn matches_values(&self, a: ValuesRef<'_>, b: ValuesRef<'_>) -> Option<f64> {
        if let [rule] = self.rules.as_slice() {
            if rule.weight == 1.0 {
                assert_eq!(
                    a.len(),
                    1,
                    "prepared entity {} does not match this matcher's rules",
                    a.entity_ref()
                );
                assert_eq!(
                    b.len(),
                    1,
                    "prepared entity {} does not match this matcher's rules",
                    b.entity_ref()
                );
                return match (a.value(0), b.value(0)) {
                    (Some(pa), Some(pb)) => {
                        rule.similarity.sim_view_at_least(&pa, &pb, self.threshold)
                    }
                    // Missing attribute scores zero, exactly like the
                    // weighted path.
                    _ => (0.0 >= self.threshold).then_some(0.0),
                };
            }
        }
        let s = self.score_values(a, b);
        (s >= self.threshold).then_some(s)
    }
}

/// The two storage forms a prepared entity can be scored from: a heap
/// [`PreparedEntity`] or an arena-interned [`PreparedId`]. Scoring is
/// defined once over this view and bit-identical across both.
#[derive(Clone, Copy)]
enum ValuesRef<'a> {
    Heap(&'a PreparedEntity),
    Arena(&'a PreparedArena, PreparedId),
}

impl<'a> ValuesRef<'a> {
    fn len(self) -> usize {
        match self {
            ValuesRef::Heap(p) => p.values.len(),
            ValuesRef::Arena(arena, id) => arena.rule_slots(id),
        }
    }

    fn value(self, rule: usize) -> Option<PreparedView<'a>> {
        match self {
            ValuesRef::Heap(p) => p.values[rule].as_ref().map(Prepared::view),
            ValuesRef::Arena(arena, id) => arena.value(id, rule),
        }
    }

    fn entity_ref(self) -> EntityRef {
        match self {
            ValuesRef::Heap(p) => p.entity_ref,
            ValuesRef::Arena(_, id) => id.entity_ref(),
        }
    }
}

/// An entity preprocessed against one [`Matcher`]: the `i`-th slot is
/// the [`Prepared`] form of the attribute rule `i` compares (or `None`
/// when the entity lacks that attribute).
#[derive(Debug, Clone)]
pub struct PreparedEntity {
    entity_ref: EntityRef,
    values: Vec<Option<Prepared>>,
}

impl PreparedEntity {
    /// The `(source, id)` of the entity this was prepared from.
    pub fn entity_ref(&self) -> EntityRef {
        self.entity_ref
    }
}

/// One resident cache entry: the prepared form plus the logical clock
/// tick of its most recent use (recency bookkeeping is skipped
/// entirely in unbounded mode, where `last_used` stays 0).
#[derive(Debug, Clone)]
struct CacheSlot {
    value: Arc<PreparedEntity>,
    last_used: u64,
}

/// A cheap, clonable handle to one cached prepared entity, as handed
/// out by [`MatcherCache::handle`] and consumed by
/// [`MatcherCache::matches_handles`].
///
/// Arena-mode caches hand out `Copy`-sized [`PreparedId`]s (valid
/// until the cache is cleared); bounded LRU caches hand out
/// `Arc`-shared heap entities that stay alive even after eviction.
#[derive(Debug, Clone)]
pub enum PreparedHandle {
    /// Interned in the cache's [`PreparedArena`].
    Arena(PreparedId),
    /// Heap-prepared, shared via `Arc` (bounded LRU mode).
    Heap(Arc<PreparedEntity>),
}

/// Memoizing cache of prepared entities keyed by entity reference —
/// one prepare per distinct entity per cache lifetime, no matter how
/// many reduce groups (PairRange ranges, multi-pass replicas) revisit
/// it.
///
/// The cache is intended to live for one reduce task; clone-derived
/// copies start empty state-wise only if cloned before first use, so
/// reducers should create it in `setup` or hold it per instance.
///
/// # Arena mode (default)
///
/// [`MatcherCache::new`] backs the cache with a [`PreparedArena`]:
/// every first sighting of an entity is heap-prepared once, interned
/// into contiguous slabs, and the temporary dropped. Pair scoring via
/// [`MatcherCache::matches_handles`] then reads slab slices directly —
/// **zero allocations per comparison** once every entity of a block
/// has been seen, which is what keeps the O(b²) inner loop
/// allocation-free.
///
/// # Bounded LRU mode
///
/// [`MatcherCache::with_capacity`] instead caps the number of resident
/// prepared entities with least-recently-used eviction (a recency
/// index over a logical clock; `O(log n)` per touch). An evicted
/// entity is simply re-prepared on its next sighting — preparation is
/// deterministic, so eviction can never change match decisions, only
/// trade memory for recompute. Bound the cache for
/// long-running/streaming tasks whose key space grows without limit;
/// arena mode is right for the paper's batch reduce tasks (a task sees
/// each entity a bounded number of times).
#[derive(Debug, Clone)]
pub struct MatcherCache {
    matcher: Arc<Matcher>,
    store: Store,
}

/// The two backing stores of a [`MatcherCache`].
#[derive(Debug, Clone)]
enum Store {
    /// Unbounded arena interning (default).
    Arena {
        ids: HashMap<EntityRef, PreparedId>,
        arena: PreparedArena,
    },
    /// Bounded heap entries with LRU eviction.
    Lru {
        prepared: HashMap<EntityRef, CacheSlot>,
        capacity: usize,
        /// Logical clock driving LRU order; monotonically increasing.
        tick: u64,
        /// Recency index: `last_used tick -> entity` (ticks are
        /// unique).
        recency: BTreeMap<u64, EntityRef>,
        evictions: u64,
    },
}

impl MatcherCache {
    /// An empty, unbounded arena-mode cache bound to `matcher`.
    pub fn new(matcher: Arc<Matcher>) -> Self {
        Self {
            matcher,
            store: Store::Arena {
                ids: HashMap::new(),
                arena: PreparedArena::new(),
            },
        }
    }

    /// An empty LRU cache holding at most `capacity` prepared
    /// entities, evicting the least recently used beyond that.
    ///
    /// # Panics
    /// If `capacity < 2`: [`MatcherCache::matches`] prepares both
    /// sides of a pair before scoring, so the cache must be able to
    /// hold at least two entries.
    pub fn with_capacity(matcher: Arc<Matcher>, capacity: usize) -> Self {
        assert!(capacity >= 2, "a bounded cache needs room for a pair");
        Self {
            matcher,
            store: Store::Lru {
                prepared: HashMap::new(),
                capacity,
                tick: 0,
                recency: BTreeMap::new(),
                evictions: 0,
            },
        }
    }

    /// The matcher this cache prepares against.
    pub fn matcher(&self) -> &Arc<Matcher> {
        &self.matcher
    }

    /// The capacity bound, if any (`None` in arena mode).
    pub fn capacity(&self) -> Option<usize> {
        match &self.store {
            Store::Arena { .. } => None,
            Store::Lru { capacity, .. } => Some(*capacity),
        }
    }

    /// Entries evicted so far (always zero in arena mode).
    pub fn evictions(&self) -> u64 {
        match &self.store {
            Store::Arena { .. } => 0,
            Store::Lru { evictions, .. } => *evictions,
        }
    }

    /// The backing arena, if this cache runs in arena mode.
    pub fn arena(&self) -> Option<&PreparedArena> {
        match &self.store {
            Store::Arena { arena, .. } => Some(arena),
            Store::Lru { .. } => None,
        }
    }

    /// A handle to the prepared form of `e`, computing it on first
    /// sight (or on re-sighting after an eviction).
    pub fn handle(&mut self, e: &Entity) -> PreparedHandle {
        let key = e.entity_ref();
        match &mut self.store {
            Store::Arena { ids, arena } => {
                if let Some(&id) = ids.get(&key) {
                    return PreparedHandle::Arena(id);
                }
                // The heap form is a warm-up temporary: interning
                // copies it into the slabs, then it is dropped.
                let prepared = self.matcher.prepare(e);
                let id = arena.intern(key, &prepared.values);
                ids.insert(key, id);
                PreparedHandle::Arena(id)
            }
            Store::Lru {
                prepared,
                capacity,
                tick,
                recency,
                evictions,
            } => {
                *tick += 1;
                let tick = *tick;
                if let Some(slot) = prepared.get_mut(&key) {
                    recency.remove(&slot.last_used);
                    slot.last_used = tick;
                    recency.insert(tick, key);
                    return PreparedHandle::Heap(Arc::clone(&slot.value));
                }
                if prepared.len() >= *capacity {
                    let (_, victim) = recency
                        .pop_first()
                        .expect("a full bounded cache has recency entries");
                    prepared.remove(&victim);
                    *evictions += 1;
                }
                let value = Arc::new(self.matcher.prepare(e));
                prepared.insert(
                    key,
                    CacheSlot {
                        value: Arc::clone(&value),
                        last_used: tick,
                    },
                );
                recency.insert(tick, key);
                PreparedHandle::Heap(value)
            }
        }
    }

    /// Threshold decision over two handles previously issued by this
    /// cache. Takes `&self` — the hot pair loop holds handles and
    /// never mutates the cache, so this call allocates nothing in
    /// arena mode.
    ///
    /// # Panics
    /// If an [`PreparedHandle::Arena`] handle is passed to a bounded
    /// LRU cache (LRU caches never issue arena handles), or a handle
    /// outlived [`MatcherCache::clear`].
    pub fn matches_handles(&self, a: &PreparedHandle, b: &PreparedHandle) -> Option<f64> {
        let arena = self.arena();
        let va = Self::values_ref(arena, a);
        let vb = Self::values_ref(arena, b);
        self.matcher.matches_values(va, vb)
    }

    fn values_ref<'a>(
        arena: Option<&'a PreparedArena>,
        handle: &'a PreparedHandle,
    ) -> ValuesRef<'a> {
        match handle {
            PreparedHandle::Heap(p) => ValuesRef::Heap(p),
            PreparedHandle::Arena(id) => ValuesRef::Arena(
                arena.expect("arena handle requires an arena-mode cache"),
                *id,
            ),
        }
    }

    /// Threshold decision using cached prepared forms for both sides.
    pub fn matches(&mut self, a: &Entity, b: &Entity) -> Option<f64> {
        let pa = self.handle(a);
        let pb = self.handle(b);
        self.matches_handles(&pa, &pb)
    }

    /// Number of entities currently resident.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Arena { ids, .. } => ids.len(),
            Store::Lru { prepared, .. } => prepared.len(),
        }
    }

    /// True when nothing has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached entries (e.g. between unrelated inputs whose
    /// entity ids overlap). Keeps the mode and capacity bound; resets
    /// the eviction counter along with the entries. **Invalidates all
    /// outstanding [`PreparedHandle::Arena`] handles** — drop them
    /// along with the clear; `Heap` handles stay usable.
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Arena { ids, arena } => {
                ids.clear();
                arena.clear();
            }
            Store::Lru {
                prepared,
                recency,
                evictions,
                ..
            } => {
                prepared.clear();
                recency.clear();
                *evictions = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::Jaccard;

    fn e(id: u64, title: &str) -> Entity {
        Entity::new(id, [("title", title)])
    }

    #[test]
    fn paper_default_thresholds_at_0_8() {
        let m = Matcher::paper_default();
        // One edit on a ten-char title: similarity 0.9 -> match.
        assert!(m
            .matches(&e(1, "abcdefghij"), &e(2, "abcdefghiX"))
            .is_some());
        // Three edits on ten chars: similarity 0.7 -> no match.
        assert!(m
            .matches(&e(1, "abcdefghij"), &e(2, "abcdefgXYZ"))
            .is_none());
        // Exactly at the threshold: 8/10 -> match (>=).
        assert!(m
            .matches(&e(1, "abcdefghij"), &e(2, "abcdefghXY"))
            .is_some());
    }

    #[test]
    fn missing_attribute_scores_zero() {
        let m = Matcher::paper_default();
        let no_title = Entity::new(3, [("brand", "canon")]);
        assert_eq!(m.score(&e(1, "x"), &no_title), 0.0);
        assert!(m.matches(&e(1, "x"), &no_title).is_none());
    }

    #[test]
    fn weighted_aggregation() {
        let m = Matcher::new(
            vec![
                MatchRule::new("title", Arc::new(NormalizedLevenshtein)).with_weight(3.0),
                MatchRule::new("brand", Arc::new(Jaccard)).with_weight(1.0),
            ],
            0.5,
        );
        let a = Entity::new(1, [("title", "same"), ("brand", "alpha")]);
        let b = Entity::new(2, [("title", "same"), ("brand", "beta")]);
        // title: 1.0 weighted 3, brand: 0.0 weighted 1 -> 0.75
        assert!((m.score(&a, &b) - 0.75).abs() < 1e-12);
        assert!(m.matches(&a, &b).is_some());
    }

    #[test]
    fn score_is_symmetric() {
        let m = Matcher::paper_default();
        let (a, b) = (e(1, "kitten"), e(2, "sitting"));
        assert!((m.score(&a, &b) - m.score(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn empty_rules_rejected() {
        let _ = Matcher::new(vec![], 0.5);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn bad_threshold_rejected() {
        let _ = Matcher::new(
            vec![MatchRule::new("title", Arc::new(NormalizedLevenshtein))],
            1.5,
        );
    }

    #[test]
    fn debug_shows_measure_name() {
        let m = Matcher::paper_default();
        assert!(format!("{m:?}").contains("levenshtein"));
    }

    #[test]
    fn prepared_scoring_is_bit_exact_with_string_scoring() {
        let m = Matcher::new(
            vec![
                MatchRule::new("title", Arc::new(NormalizedLevenshtein)).with_weight(2.0),
                MatchRule::new("brand", Arc::new(Jaccard)),
            ],
            0.5,
        );
        let a = Entity::new(1, [("title", "canon eos 5d"), ("brand", "canon inc")]);
        let b = Entity::new(2, [("title", "canon eos 7d")]);
        let (pa, pb) = (m.prepare(&a), m.prepare(&b));
        assert_eq!(
            m.score(&a, &b).to_bits(),
            m.score_prepared(&pa, &pb).to_bits()
        );
        assert_eq!(m.matches(&a, &b), m.matches_prepared(&pa, &pb));
    }

    #[test]
    fn fast_path_decision_equals_exact_path() {
        // paper_default is single-rule unit-weight -> banded fast
        // path; decisions and scores must match the string path.
        let m = Matcher::paper_default();
        for (ta, tb) in [
            ("abcdefghij", "abcdefghij"),
            ("abcdefghij", "abcdefghiX"),
            ("abcdefghij", "abcdefghXY"), // exactly at 0.8
            ("abcdefghij", "abcdefgXYZ"), // just below
            ("abcdefghij", "zzzzzzzzzz"),
            ("", ""),
            ("", "abc"),
        ] {
            let (a, b) = (e(1, ta), e(2, tb));
            let (pa, pb) = (m.prepare(&a), m.prepare(&b));
            assert_eq!(
                m.matches_prepared(&pa, &pb).map(f64::to_bits),
                m.matches(&a, &b).map(f64::to_bits),
                "{ta:?} vs {tb:?}"
            );
        }
    }

    #[test]
    fn prepared_entity_tracks_missing_attributes() {
        let m = Matcher::paper_default();
        let no_title = Entity::new(3, [("brand", "canon")]);
        let p = m.prepare(&no_title);
        let q = m.prepare(&e(1, "x"));
        assert_eq!(m.score_prepared(&p, &q), 0.0);
        assert_eq!(p.entity_ref(), no_title.entity_ref());
    }

    #[test]
    #[should_panic(expected = "does not match this matcher's rules")]
    fn foreign_prepared_entity_is_rejected() {
        let one_rule = Matcher::paper_default();
        let two_rules = Matcher::new(
            vec![
                MatchRule::new("title", Arc::new(NormalizedLevenshtein)),
                MatchRule::new("brand", Arc::new(Jaccard)),
            ],
            0.5,
        );
        let p1 = one_rule.prepare(&e(1, "a"));
        let p2 = two_rules.prepare(&e(2, "b"));
        let _ = two_rules.score_prepared(&p2, &p1);
    }

    /// Unwraps the `Heap` form an LRU cache must hand out.
    fn heap(h: PreparedHandle) -> Arc<PreparedEntity> {
        match h {
            PreparedHandle::Heap(p) => p,
            PreparedHandle::Arena(_) => panic!("expected a heap handle"),
        }
    }

    /// Unwraps the `Arena` form an arena-mode cache must hand out.
    fn interned(h: PreparedHandle) -> PreparedId {
        match h {
            PreparedHandle::Arena(id) => id,
            PreparedHandle::Heap(_) => panic!("expected an arena handle"),
        }
    }

    #[test]
    fn cache_prepares_each_entity_once() {
        let mut cache = MatcherCache::new(Arc::new(Matcher::paper_default()));
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), None, "arena mode is unbounded");
        let a = e(1, "abcdefghij");
        let b = e(2, "abcdefghiX");
        let first = interned(cache.handle(&a));
        let again = interned(cache.handle(&a));
        assert_eq!(first, again, "second lookup must hit");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.arena().expect("arena mode").len(), 1);
        assert!(cache.matches(&a, &b).is_some());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.arena().expect("arena mode").is_empty());
    }

    #[test]
    fn arena_cache_decisions_match_direct_prepared_path() {
        let matcher = Arc::new(Matcher::paper_default());
        let mut cache = MatcherCache::new(Arc::clone(&matcher));
        for (ta, tb) in [
            ("abcdefghij", "abcdefghiX"),
            ("abcdefghij", "abcdefghXY"), // exactly at 0.8
            ("abcdefghij", "zzzzzzzzzz"),
            ("", ""),
        ] {
            let (a, b) = (e(20, ta), e(21, tb));
            let (ha, hb) = (cache.handle(&a), cache.handle(&b));
            let via_handles = cache.matches_handles(&ha, &hb);
            let direct = matcher.matches_prepared(&matcher.prepare(&a), &matcher.prepare(&b));
            assert_eq!(
                via_handles.map(f64::to_bits),
                direct.map(f64::to_bits),
                "{ta:?} vs {tb:?}"
            );
            cache.clear();
        }
    }

    #[test]
    #[should_panic(expected = "arena handle requires an arena-mode cache")]
    fn arena_handle_rejected_by_lru_cache() {
        let matcher = Arc::new(Matcher::paper_default());
        let mut arena_cache = MatcherCache::new(Arc::clone(&matcher));
        let mut lru = MatcherCache::with_capacity(matcher, 2);
        let a = e(1, "aaaaaaaaaa");
        let ha = arena_cache.handle(&a);
        let hb = lru.handle(&a);
        let _ = lru.matches_handles(&ha, &hb);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let mut cache = MatcherCache::with_capacity(Arc::new(Matcher::paper_default()), 2);
        assert_eq!(cache.capacity(), Some(2));
        assert!(cache.arena().is_none(), "LRU mode has no arena");
        let (a, b, c) = (e(1, "aaaaaaaaaa"), e(2, "bbbbbbbbbb"), e(3, "cccccccccc"));
        let pa = heap(cache.handle(&a));
        let _ = cache.handle(&b);
        // Touch `a` so `b` becomes the LRU victim when `c` arrives.
        let pa_again = heap(cache.handle(&a));
        assert!(Arc::ptr_eq(&pa, &pa_again), "touching must be a hit");
        let _ = cache.handle(&c);
        assert_eq!(cache.len(), 2, "capacity bound holds");
        assert_eq!(cache.evictions(), 1);
        // `a` survived (recently used); preparing it again is a hit.
        let pa_third = heap(cache.handle(&a));
        assert!(Arc::ptr_eq(&pa, &pa_third), "recently used entry kept");
        // `b` was evicted: re-preparation yields a fresh allocation...
        let pb_new = heap(cache.handle(&b));
        assert_eq!(cache.evictions(), 2, "re-admitting b evicted c");
        // ...that scores bit-identically to an uncached preparation.
        let direct = Matcher::paper_default().prepare(&b);
        assert_eq!(
            cache.matcher().score_prepared(&pb_new, &pb_new).to_bits(),
            cache.matcher().score_prepared(&direct, &direct).to_bits()
        );
    }

    #[test]
    fn bounded_cache_decisions_match_unbounded() {
        // Thrash a capacity-2 cache across overlapping pairs; every
        // decision must equal the unbounded cache's, bit for bit —
        // eviction may only cost recompute, never correctness.
        let matcher = Arc::new(Matcher::paper_default());
        let mut bounded = MatcherCache::with_capacity(Arc::clone(&matcher), 2);
        let mut unbounded = MatcherCache::new(Arc::clone(&matcher));
        let entities: Vec<Entity> = [
            "abcdefghij",
            "abcdefghiX",
            "abcdefgXYZ",
            "zzzzzzzzzz",
            "abcdefghij",
        ]
        .iter()
        .enumerate()
        .map(|(i, t)| e(i as u64, t))
        .collect();
        for i in 0..entities.len() {
            for j in (i + 1)..entities.len() {
                let (a, b) = (&entities[i], &entities[j]);
                assert_eq!(
                    bounded.matches(a, b).map(f64::to_bits),
                    unbounded.matches(a, b).map(f64::to_bits),
                    "pair ({i}, {j})"
                );
            }
        }
        assert!(bounded.evictions() > 0, "the thrash must actually evict");
        assert_eq!(unbounded.evictions(), 0);
        assert!(bounded.len() <= 2);
        bounded.clear();
        assert_eq!(bounded.evictions(), 0, "clear resets the counter");
        assert_eq!(bounded.capacity(), Some(2), "clear keeps the bound");
    }

    #[test]
    #[should_panic(expected = "room for a pair")]
    fn bounded_cache_rejects_capacity_below_two() {
        let _ = MatcherCache::with_capacity(Arc::new(Matcher::paper_default()), 1);
    }

    #[test]
    fn cache_agrees_with_direct_matching() {
        let matcher = Arc::new(Matcher::paper_default());
        let mut cache = MatcherCache::new(Arc::clone(&matcher));
        assert!(Arc::ptr_eq(cache.matcher(), &matcher));
        for (ta, tb) in [
            ("abcdefghij", "abcdefghiX"),
            ("abcdefghij", "zzzzzzzzzz"),
            ("", ""),
            ("short", "short"),
        ] {
            let (a, b) = (e(10, ta), e(11, tb));
            assert_eq!(cache.matches(&a, &b), matcher.matches(&a, &b));
            cache.clear();
        }
    }
}
