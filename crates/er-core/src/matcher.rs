//! Threshold matching of entity pairs.

use std::sync::Arc;

use crate::entity::Entity;
use crate::similarity::{NormalizedLevenshtein, Similarity};

/// One attribute-level comparison: similarity measure over one
/// attribute, with an optional weight for aggregation.
#[derive(Clone)]
pub struct MatchRule {
    /// Attribute whose values are compared.
    pub attribute: String,
    /// The similarity measure.
    pub similarity: Arc<dyn Similarity>,
    /// Relative weight within the aggregated score.
    pub weight: f64,
}

impl MatchRule {
    /// A rule with weight 1.
    pub fn new(attribute: impl Into<String>, similarity: Arc<dyn Similarity>) -> Self {
        Self {
            attribute: attribute.into(),
            similarity,
            weight: 1.0,
        }
    }

    /// Overrides the weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    fn score(&self, a: &Entity, b: &Entity) -> f64 {
        match (a.get(&self.attribute), b.get(&self.attribute)) {
            (Some(va), Some(vb)) => self.similarity.sim(va, vb),
            // A missing attribute contributes zero evidence, which is
            // the conservative choice for deduplication.
            _ => 0.0,
        }
    }
}

impl std::fmt::Debug for MatchRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchRule")
            .field("attribute", &self.attribute)
            .field("similarity", &self.similarity.name())
            .field("weight", &self.weight)
            .finish()
    }
}

/// A weighted-average multi-rule matcher with a decision threshold.
///
/// The paper's configuration is a single rule: normalized edit
/// distance on `title` with threshold `0.8` — see
/// [`Matcher::paper_default`].
#[derive(Clone, Debug)]
pub struct Matcher {
    rules: Vec<MatchRule>,
    threshold: f64,
}

impl Matcher {
    /// Builds a matcher from rules and a threshold in `[0, 1]`.
    ///
    /// # Panics
    /// If `rules` is empty, total weight is zero, or the threshold is
    /// outside `[0, 1]`.
    pub fn new(rules: Vec<MatchRule>, threshold: f64) -> Self {
        assert!(!rules.is_empty(), "a matcher needs at least one rule");
        assert!(
            rules.iter().map(|r| r.weight).sum::<f64>() > 0.0,
            "total rule weight must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be within [0, 1]"
        );
        Self { rules, threshold }
    }

    /// The paper's match configuration: edit distance on the title with
    /// a minimal similarity of 0.8.
    pub fn paper_default() -> Self {
        Self::new(
            vec![MatchRule::new("title", Arc::new(NormalizedLevenshtein))],
            0.8,
        )
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Weighted-average similarity of an entity pair.
    pub fn score(&self, a: &Entity, b: &Entity) -> f64 {
        let total_weight: f64 = self.rules.iter().map(|r| r.weight).sum();
        let weighted: f64 = self
            .rules
            .iter()
            .map(|r| r.weight * r.score(a, b))
            .sum();
        weighted / total_weight
    }

    /// Returns `Some(score)` iff the pair's score reaches the
    /// threshold.
    pub fn matches(&self, a: &Entity, b: &Entity) -> Option<f64> {
        let s = self.score(a, b);
        (s >= self.threshold).then_some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::Jaccard;

    fn e(id: u64, title: &str) -> Entity {
        Entity::new(id, [("title", title)])
    }

    #[test]
    fn paper_default_thresholds_at_0_8() {
        let m = Matcher::paper_default();
        // One edit on a ten-char title: similarity 0.9 -> match.
        assert!(m.matches(&e(1, "abcdefghij"), &e(2, "abcdefghiX")).is_some());
        // Three edits on ten chars: similarity 0.7 -> no match.
        assert!(m.matches(&e(1, "abcdefghij"), &e(2, "abcdefgXYZ")).is_none());
        // Exactly at the threshold: 8/10 -> match (>=).
        assert!(m.matches(&e(1, "abcdefghij"), &e(2, "abcdefghXY")).is_some());
    }

    #[test]
    fn missing_attribute_scores_zero() {
        let m = Matcher::paper_default();
        let no_title = Entity::new(3, [("brand", "canon")]);
        assert_eq!(m.score(&e(1, "x"), &no_title), 0.0);
        assert!(m.matches(&e(1, "x"), &no_title).is_none());
    }

    #[test]
    fn weighted_aggregation() {
        let m = Matcher::new(
            vec![
                MatchRule::new("title", Arc::new(NormalizedLevenshtein)).with_weight(3.0),
                MatchRule::new("brand", Arc::new(Jaccard)).with_weight(1.0),
            ],
            0.5,
        );
        let a = Entity::new(1, [("title", "same"), ("brand", "alpha")]);
        let b = Entity::new(2, [("title", "same"), ("brand", "beta")]);
        // title: 1.0 weighted 3, brand: 0.0 weighted 1 -> 0.75
        assert!((m.score(&a, &b) - 0.75).abs() < 1e-12);
        assert!(m.matches(&a, &b).is_some());
    }

    #[test]
    fn score_is_symmetric() {
        let m = Matcher::paper_default();
        let (a, b) = (e(1, "kitten"), e(2, "sitting"));
        assert!((m.score(&a, &b) - m.score(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn empty_rules_rejected() {
        let _ = Matcher::new(vec![], 0.5);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn bad_threshold_rejected() {
        let _ = Matcher::new(
            vec![MatchRule::new("title", Arc::new(NormalizedLevenshtein))],
            1.5,
        );
    }

    #[test]
    fn debug_shows_measure_name() {
        let m = Matcher::paper_default();
        assert!(format!("{m:?}").contains("levenshtein"));
    }
}
