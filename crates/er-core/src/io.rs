//! Plain-text (TSV) entity I/O.
//!
//! A deliberately dependency-free interchange format so users can feed
//! their own records into the pipeline: one header line with the union
//! of attribute names, then one row per entity
//! (`source <TAB> id <TAB> value…`). Missing attributes are encoded as
//! `\N` (MySQL-style); tabs, newlines, backslashes and a literal `\N`
//! inside values are backslash-escaped. Reading normalizes attribute
//! order to the (sorted) column order; values, ids and sources survive
//! byte-exactly.

use std::collections::BTreeSet;
use std::io::{self, BufRead, Write};

use crate::entity::{Entity, SourceId};

/// The cell encoding for "attribute absent".
const NULL_CELL: &str = "\\N";

fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    if out == NULL_CELL {
        // A literal value "\N" must survive the round trip.
        return "\\\\N".to_string();
    }
    out
}

fn unescape(cell: &str) -> Option<String> {
    if cell == NULL_CELL {
        return None;
    }
    let mut out = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('N') => out.push_str("\\N"),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Writes entities as TSV. Attribute columns are the sorted union of
/// all attribute names.
pub fn write_entities<W: Write>(mut w: W, entities: &[Entity]) -> io::Result<()> {
    let attributes: BTreeSet<String> = entities
        .iter()
        .flat_map(|e| e.attributes().map(|(k, _)| k.to_string()))
        .collect();
    write!(w, "source\tid")?;
    for a in &attributes {
        write!(w, "\t{a}")?;
    }
    writeln!(w)?;
    for e in entities {
        write!(w, "{}\t{}", e.source().0, e.id().0)?;
        for a in &attributes {
            match e.get(a) {
                Some(v) => write!(w, "\t{}", escape(v))?,
                None => write!(w, "\t{NULL_CELL}")?,
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads entities from the TSV format written by [`write_entities`].
pub fn read_entities<R: BufRead>(r: R) -> io::Result<Vec<Entity>> {
    let mut lines = r.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok(Vec::new()),
    };
    let columns: Vec<&str> = header.split('\t').collect();
    if columns.len() < 2 || columns[0] != "source" || columns[1] != "id" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "TSV header must start with 'source\\tid'",
        ));
    }
    let attributes: Vec<String> = columns[2..].iter().map(|s| s.to_string()).collect();
    let mut entities = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != attributes.len() + 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {} cells, found {}",
                    lineno + 2,
                    attributes.len() + 2,
                    cells.len()
                ),
            ));
        }
        let source: u8 = cells[0]
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad source id"))?;
        let id: u64 = cells[1]
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad entity id"))?;
        let attrs: Vec<(String, String)> = attributes
            .iter()
            .zip(&cells[2..])
            .filter_map(|(name, &cell)| unescape(cell).map(|v| (name.clone(), v)))
            .collect();
        entities.push(Entity::with_source(
            SourceId(source),
            id,
            attrs.iter().map(|(k, v)| (k.as_str(), v.as_str())),
        ));
    }
    Ok(entities)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entities: &[Entity]) -> Vec<Entity> {
        let mut buf = Vec::new();
        write_entities(&mut buf, entities).unwrap();
        read_entities(io::BufReader::new(&buf[..])).unwrap()
    }

    /// Order-insensitive comparison: reading normalizes attribute
    /// order to the sorted column order.
    fn same_content(a: &[Entity], b: &[Entity]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.entity_ref() == y.entity_ref()
                    && x.attributes().collect::<std::collections::BTreeMap<_, _>>()
                        == y.attributes().collect::<std::collections::BTreeMap<_, _>>()
            })
    }

    #[test]
    fn simple_round_trip() {
        let entities = vec![
            Entity::new(0, [("title", "canon eos"), ("price", "99")]),
            Entity::with_source(SourceId::S, 7, [("title", "nikon d800")]),
        ];
        let back = roundtrip(&entities);
        assert!(same_content(&back, &entities));
    }

    #[test]
    fn missing_attributes_stay_missing() {
        let entities = vec![
            Entity::new(0, [("title", "x")]),
            Entity::new(1, [("brand", "y")]),
        ];
        let back = roundtrip(&entities);
        assert_eq!(back[0].get("brand"), None);
        assert_eq!(back[1].get("title"), None);
        assert!(same_content(&back, &entities));
    }

    #[test]
    fn special_characters_survive() {
        let nasty = "tab\there\nnewline \\backslash\r";
        let entities = vec![Entity::new(0, [("title", nasty)])];
        let back = roundtrip(&entities);
        assert_eq!(back[0].get("title"), Some(nasty));
    }

    #[test]
    fn literal_null_marker_survives() {
        let entities = vec![Entity::new(0, [("title", "\\N")])];
        let back = roundtrip(&entities);
        assert_eq!(back[0].get("title"), Some("\\N"));
    }

    #[test]
    fn empty_value_is_not_null() {
        let entities = vec![Entity::new(0, [("title", "")])];
        let back = roundtrip(&entities);
        assert_eq!(back[0].get("title"), Some(""));
    }

    #[test]
    fn empty_input_and_bad_headers() {
        assert!(read_entities(io::BufReader::new(&b""[..]))
            .unwrap()
            .is_empty());
        let err = read_entities(io::BufReader::new(&b"nope\tid\tx\n"[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let data = b"source\tid\ttitle\n0\t1\n";
        let err = read_entities(io::BufReader::new(&data[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
    }
}
