//! Sort keys and range partitioning for Sorted Neighborhood blocking.
//!
//! Sorted Neighborhood (Hernández & Stolfo, 1995) replaces disjoint
//! blocks with a *total order*: entities are sorted by a sort key and
//! every pair within a sliding window of size `w` is compared. Mapping
//! that onto MapReduce (Kolb, Thor, Rahm; "Parallel Sorted Neighborhood
//! Blocking with MapReduce", 2010) needs exactly two primitives, both
//! provided here:
//!
//! * a [`SortKeyFunction`] deriving the sort key of an entity (the
//!   analogue of [`crate::blocking::BlockingFunction`], but producing a
//!   key whose *order* matters rather than a partition label), and
//! * a [`RangePartitioner`] that routes keys to `p` contiguous,
//!   order-preserving ranges, built from a sampled key distribution —
//!   so that concatenating reduce partitions `0..p` in index order
//!   yields the globally sorted sequence.
//!
//! The partitioner is deliberately generic over the key type: the
//! er-sn crate instantiates it with [`SortKey`], and tests exercise it
//! with plain integers.

use std::fmt;
use std::sync::Arc;

use crate::entity::Entity;

/// A sort key. Cheap to clone (shared storage) because keys travel
/// inside every shuffled composite key, exactly like
/// [`crate::blocking::BlockKey`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortKey(Arc<str>);

impl SortKey {
    /// Creates a key from any string-ish value.
    pub fn new(s: impl AsRef<str>) -> Self {
        SortKey(Arc::from(s.as_ref()))
    }

    /// The empty key — sorts before every non-empty key. Used as the
    /// deterministic destination for entities without a valid sort key
    /// under the `SortFirst` null-key policy (see er-sn).
    pub fn empty() -> Self {
        SortKey::new("")
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True for the [`SortKey::empty`] key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for SortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for SortKey {
    fn from(s: &str) -> Self {
        SortKey::new(s)
    }
}

/// Derives sort keys from entities.
///
/// `sort_key` returns `None` when the entity has no usable key (missing
/// or empty attribute); callers must route such entities by an explicit
/// policy — never drop them silently.
pub trait SortKeyFunction: Send + Sync {
    /// The sort key of `entity`, if one can be derived.
    fn sort_key(&self, entity: &Entity) -> Option<SortKey>;
}

/// Sort key from one attribute value: lower-cased, whitespace-trimmed,
/// optionally truncated to a character prefix (the classic SN sort key
/// is a short prefix so that near-duplicates collate adjacently).
#[derive(Debug, Clone)]
pub struct AttributeSortKey {
    attribute: String,
    prefix_len: Option<usize>,
}

impl AttributeSortKey {
    /// Sorts on the full (normalized) value of `attribute`.
    pub fn new(attribute: impl Into<String>) -> Self {
        Self {
            attribute: attribute.into(),
            prefix_len: None,
        }
    }

    /// Sorts on the first `len` characters of the normalized value.
    ///
    /// # Panics
    /// If `len` is zero — an empty prefix cannot order anything.
    pub fn prefix(attribute: impl Into<String>, len: usize) -> Self {
        assert!(len > 0, "a sort-key prefix needs at least one character");
        Self {
            attribute: attribute.into(),
            prefix_len: Some(len),
        }
    }

    /// The paper-style default: the full normalized `title`.
    pub fn title() -> Self {
        Self::new("title")
    }
}

impl SortKeyFunction for AttributeSortKey {
    fn sort_key(&self, entity: &Entity) -> Option<SortKey> {
        let value = entity.get(&self.attribute)?;
        // Normalize first, then truncate: lowercasing can expand a
        // character (e.g. 'İ' → "i\u{307}"), and a prefix must be a
        // prefix of the *normalized* value or equal inputs would stop
        // collating together.
        let lowered = value.trim().chars().flat_map(char::to_lowercase);
        let normalized: String = match self.prefix_len {
            Some(len) => lowered.take(len).collect(),
            None => lowered.collect(),
        };
        if normalized.is_empty() {
            None
        } else {
            Some(SortKey::new(normalized))
        }
    }
}

/// Reverses the character order of an inner function's sort key — the
/// classic second pass of multi-pass Sorted Neighborhood.
///
/// A single sort key collates records by their *prefix*: entities
/// differing early in the key (a typo in the first word, a reordered
/// token) sort far apart and never share a window. Re-running SN on
/// the reversed key collates records by their *suffix* instead, so the
/// union of the two passes' window pair sets recovers most of those
/// misses (cf. *Data Partitioning for Parallel Entity Matching*, which
/// uses multi-pass blocking as the standard recall lever).
#[derive(Clone)]
pub struct ReversedSortKey {
    inner: Arc<dyn SortKeyFunction>,
}

impl ReversedSortKey {
    /// Reverses the keys derived by `inner`.
    pub fn new(inner: Arc<dyn SortKeyFunction>) -> Self {
        Self { inner }
    }

    /// The paper-style default reversed: the full normalized `title`,
    /// characters in reverse order.
    pub fn title() -> Self {
        Self::new(Arc::new(AttributeSortKey::title()))
    }
}

impl SortKeyFunction for ReversedSortKey {
    fn sort_key(&self, entity: &Entity) -> Option<SortKey> {
        let key = self.inner.sort_key(entity)?;
        Some(SortKey::new(key.as_str().chars().rev().collect::<String>()))
    }
}

impl fmt::Debug for ReversedSortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReversedSortKey").finish_non_exhaustive()
    }
}

/// An order-preserving partitioner over `p` contiguous key ranges.
///
/// Built from a sampled key distribution: boundary `i` (for
/// `i ∈ 1..p`) is the smallest sampled key whose cumulative sample
/// weight reaches `⌈total·i/p⌉`. Partition `i` then receives the keys
/// in `(boundary[i-1], boundary[i]]` (partition 0 everything up to and
/// including the first boundary, the last partition everything above
/// the last boundary).
///
/// Two invariants hold by construction, regardless of how biased the
/// sample is:
///
/// * **monotonicity** — `k₁ ≤ k₂ ⇒ partition_of(k₁) ≤ partition_of(k₂)`,
///   so concatenating partitions in index order is globally sorted;
/// * **equal keys collocate** — `partition_of` is a pure function of
///   the key, so duplicate keys can never straddle a partition
///   boundary.
///
/// When the sample has fewer distinct keys than requested partitions
/// (including the degenerate all-duplicate-keys sample) consecutive
/// boundaries coincide and the ranges between them are simply *empty*:
/// the requested partition count is preserved and both invariants
/// continue to hold. Callers that cannot tolerate empty ranges (RepSN's
/// single-boundary replication) must check fill levels after routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner<K> {
    /// Upper (inclusive) bounds of partitions `0..p-1`, non-decreasing.
    boundaries: Vec<K>,
}

impl<K: Ord + Clone> RangePartitioner<K> {
    /// Builds the partitioner from a weighted sample: `counts` must be
    /// sorted ascending by key with strictly positive weights (the
    /// natural shape of a key histogram).
    ///
    /// An empty sample yields a single catch-all partition.
    ///
    /// # Panics
    /// If `partitions` is zero or `counts` is not sorted ascending.
    pub fn from_counts(counts: impl IntoIterator<Item = (K, u64)>, partitions: usize) -> Self {
        assert!(partitions > 0, "at least one partition is required");
        let counts: Vec<(K, u64)> = counts.into_iter().collect();
        assert!(
            counts.windows(2).all(|w| w[0].0 < w[1].0),
            "key counts must be sorted ascending by distinct key"
        );
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        if total == 0 || partitions == 1 {
            return Self {
                boundaries: Vec::new(),
            };
        }
        let mut boundaries = Vec::with_capacity(partitions - 1);
        let mut cumulative = 0u64;
        let mut idx = 0usize;
        let mut last_key: Option<K> = None;
        for i in 1..partitions {
            // Boundary i: the smallest key whose cumulative weight
            // reaches the i-th quantile target. When a heavy key
            // already passed several targets, boundaries repeat and
            // the ranges between them are empty.
            let target = (total * i as u64).div_ceil(partitions as u64);
            while cumulative < target {
                let (key, count) = &counts[idx];
                cumulative += count;
                last_key = Some(key.clone());
                idx += 1;
            }
            boundaries.push(last_key.clone().expect("a positive target consumes a key"));
        }
        Self { boundaries }
    }

    /// Builds the partitioner from an unweighted sample (unsorted,
    /// duplicates allowed).
    pub fn from_sample(mut sample: Vec<K>, partitions: usize) -> Self {
        sample.sort();
        let mut counts: Vec<(K, u64)> = Vec::new();
        for key in sample {
            match counts.last_mut() {
                Some((k, c)) if *k == key => *c += 1,
                _ => counts.push((key, 1)),
            }
        }
        Self::from_counts(counts, partitions)
    }

    /// The partition index of `key` — monotone in the key order.
    pub fn partition_of(&self, key: &K) -> usize {
        self.boundaries.partition_point(|b| b < key)
    }

    /// Number of partitions (`boundaries + 1`).
    pub fn num_partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The boundary keys, non-decreasing; partition `i < p-1` holds
    /// keys `≤ boundaries[i]` (and above the previous boundary).
    pub fn boundaries(&self) -> &[K] {
        &self.boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_key_basics() {
        let k = SortKey::new("canon eos");
        assert_eq!(k.as_str(), "canon eos");
        assert_eq!(k.to_string(), "canon eos");
        assert!(!k.is_empty());
        assert!(SortKey::empty().is_empty());
        assert!(SortKey::empty() < SortKey::new("a"), "empty sorts first");
        assert_eq!(SortKey::from("x"), SortKey::new("x"));
    }

    #[test]
    fn attribute_sort_key_normalizes() {
        let f = AttributeSortKey::title();
        let e = Entity::new(1, [("title", "  Canon EOS 5D  ")]);
        assert_eq!(f.sort_key(&e).unwrap().as_str(), "canon eos 5d");
    }

    #[test]
    fn attribute_sort_key_prefix_truncates_by_chars() {
        let f = AttributeSortKey::prefix("title", 3);
        let e = Entity::new(1, [("title", "Äbcdef")]);
        assert_eq!(f.sort_key(&e).unwrap().as_str(), "äbc");
    }

    #[test]
    fn prefix_truncates_after_normalization() {
        // 'İ' lowercases to two chars ("i\u{307}"); the prefix must be
        // taken from the normalized form so equal normalized values
        // keep equal keys.
        let f = AttributeSortKey::prefix("title", 3);
        let upper = Entity::new(1, [("title", "İstanbul")]);
        let lower = Entity::new(2, [("title", "i\u{307}stanbul")]);
        assert_eq!(f.sort_key(&upper), f.sort_key(&lower));
        assert_eq!(f.sort_key(&upper).unwrap().as_str().chars().count(), 3);
    }

    #[test]
    fn missing_or_blank_attribute_yields_none() {
        let f = AttributeSortKey::title();
        assert_eq!(f.sort_key(&Entity::new(1, [("brand", "x")])), None);
        assert_eq!(f.sort_key(&Entity::new(1, [("title", "   ")])), None);
    }

    #[test]
    #[should_panic(expected = "at least one character")]
    fn zero_length_prefix_rejected() {
        let _ = AttributeSortKey::prefix("title", 0);
    }

    #[test]
    fn reversed_sort_key_reverses_the_normalized_key() {
        let f = ReversedSortKey::title();
        let e = Entity::new(1, [("title", "  Canon EOS  ")]);
        assert_eq!(f.sort_key(&e).unwrap().as_str(), "soe nonac");
        // Keyless entities stay keyless — the null-key policy applies
        // identically in every pass.
        assert_eq!(f.sort_key(&Entity::new(2, [("brand", "x")])), None);
        // Suffix-equal titles collate adjacently under the reversed
        // key even though their prefixes differ.
        let a = f
            .sort_key(&Entity::new(3, [("title", "xq rocket skates")]))
            .unwrap();
        let b = f
            .sort_key(&Entity::new(4, [("title", "zp rocket skates")]))
            .unwrap();
        assert_eq!(a.as_str()[..13], b.as_str()[..13]);
        assert!(format!("{f:?}").contains("ReversedSortKey"));
    }

    #[test]
    fn range_partitioner_splits_a_uniform_sample_evenly() {
        let sample: Vec<u32> = (0..100).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert_eq!(p.num_partitions(), 4);
        let mut sizes = vec![0usize; 4];
        for k in 0..100u32 {
            sizes[p.partition_of(&k)] += 1;
        }
        assert_eq!(sizes, vec![25, 25, 25, 25]);
    }

    #[test]
    fn partition_of_is_monotone_and_collocates_equal_keys() {
        let p = RangePartitioner::from_sample(vec![5u32, 1, 9, 5, 5, 2], 3);
        for a in 0..12u32 {
            for b in a..12u32 {
                assert!(
                    p.partition_of(&a) <= p.partition_of(&b),
                    "monotonicity violated at ({a}, {b})"
                );
            }
            assert_eq!(p.partition_of(&a), p.partition_of(&a.clone()));
        }
    }

    #[test]
    fn all_duplicate_keys_collapse_into_one_occupied_partition() {
        let p = RangePartitioner::from_sample(vec![7u32; 50], 4);
        assert_eq!(p.num_partitions(), 4, "requested count is preserved");
        // Every key <= 7 lands in partition 0; keys beyond the sampled
        // range go to the last partition. Either way, equal keys share
        // a partition and order is preserved.
        assert_eq!(p.partition_of(&7), 0);
        assert_eq!(p.partition_of(&3), 0);
        assert_eq!(p.partition_of(&8), 3);
        assert!(p.boundaries().iter().all(|&b| b == 7));
    }

    #[test]
    fn fewer_distinct_keys_than_partitions_yields_empty_ranges_not_panics() {
        let p = RangePartitioner::from_sample(vec![1u32, 1, 1, 2, 2, 2], 4);
        assert_eq!(p.num_partitions(), 4);
        // Keys route deterministically; at most two ranges are occupied
        // by the sampled keys.
        let occupied: std::collections::BTreeSet<usize> =
            [1u32, 2].iter().map(|k| p.partition_of(k)).collect();
        assert!(occupied.len() <= 2);
        assert!(p.partition_of(&1) <= p.partition_of(&2));
    }

    #[test]
    fn empty_sample_yields_a_single_catch_all_partition() {
        let p = RangePartitioner::<u32>::from_sample(vec![], 8);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition_of(&42), 0);
    }

    #[test]
    fn single_partition_never_builds_boundaries() {
        let p = RangePartitioner::from_sample(vec![3u32, 1, 2], 1);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition_of(&999), 0);
    }

    #[test]
    fn weighted_counts_shift_boundaries_toward_heavy_keys() {
        // Key 0 carries 90 % of the weight: with two partitions the
        // boundary must sit at 0 so the heavy key does not drag the
        // whole tail into partition 0.
        let p = RangePartitioner::from_counts(vec![(0u32, 90), (1, 5), (2, 5)], 2);
        assert_eq!(p.partition_of(&0), 0);
        assert_eq!(p.partition_of(&1), 1);
        assert_eq!(p.partition_of(&2), 1);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_counts_rejected() {
        let _ = RangePartitioner::from_counts(vec![(2u32, 1), (1, 1)], 2);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = RangePartitioner::<u32>::from_sample(vec![1], 0);
    }

    #[test]
    fn sort_key_partitioner_end_to_end() {
        let sample: Vec<SortKey> = ["apple", "banana", "cherry", "damson", "elder", "fig"]
            .iter()
            .map(SortKey::new)
            .collect();
        let p = RangePartitioner::from_sample(sample, 3);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.partition_of(&SortKey::empty()), 0);
        assert!(p.partition_of(&SortKey::new("apple")) <= p.partition_of(&SortKey::new("fig")));
        assert_eq!(p.partition_of(&SortKey::new("zzz")), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The satellite contract: boundaries derived from *any*
        /// sample preserve sort order — routing is monotone, equal
        /// keys collocate, and indices stay within the requested
        /// partition count.
        #[test]
        fn sampled_boundaries_preserve_sort_order(
            sample in proptest::collection::vec(0u32..64, 0..80),
            probes in proptest::collection::vec(0u32..64, 2..60),
            partitions in 1usize..10,
        ) {
            let p = RangePartitioner::from_sample(sample, partitions);
            prop_assert!(p.num_partitions() <= partitions.max(1));
            let mut sorted = probes.clone();
            sorted.sort();
            let mut last = 0usize;
            for key in &sorted {
                let idx = p.partition_of(key);
                prop_assert!(idx < p.num_partitions());
                prop_assert!(idx >= last, "monotonicity violated");
                last = idx;
            }
            // Equal keys always share a partition.
            for key in &probes {
                prop_assert_eq!(p.partition_of(key), p.partition_of(&key.clone()));
            }
        }

        /// from_sample and from_counts agree on identical data.
        #[test]
        fn sample_and_counts_constructions_agree(
            sample in proptest::collection::vec(0u32..16, 1..60),
            partitions in 1usize..8,
        ) {
            let by_sample = RangePartitioner::from_sample(sample.clone(), partitions);
            let mut sorted = sample;
            sorted.sort();
            let mut counts: Vec<(u32, u64)> = Vec::new();
            for k in sorted {
                match counts.last_mut() {
                    Some((key, c)) if *key == k => *c += 1,
                    _ => counts.push((k, 1)),
                }
            }
            let by_counts = RangePartitioner::from_counts(counts, partitions);
            prop_assert_eq!(by_sample, by_counts);
        }
    }
}
