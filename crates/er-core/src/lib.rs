//! # er-core — entity resolution primitives
//!
//! The substrate the ICDE-2012 load-balancing strategies operate on:
//!
//! * an [`entity::Entity`] model (attributed records tagged with a
//!   source, for one- and two-source matching),
//! * [`blocking`] functions that derive blocking keys from attribute
//!   values (prefix blocking — "first three letters of the title" — is
//!   the paper's default; multi-pass blocking is its future-work
//!   extension),
//! * a [`similarity`] suite (the paper matches on edit distance with a
//!   0.8 threshold; Jaro-Winkler, Jaccard and n-gram measures round out
//!   the library),
//! * a threshold [`matcher`] and a deduplicating [`result`] set with
//!   quality metrics against a gold standard,
//! * an [`arena`] of contiguous slabs for prepared entities, backing
//!   the allocation-free O(b²) compare loop,
//! * the [`pairs`] enumeration arithmetic shared by PairRange and the
//!   analytic workload model,
//! * [`minhash`] signatures and banded LSH primitives (shingle sets,
//!   seeded [`MinHasher`] families, band digests and the banding
//!   S-curve), consumed by the er-lsh blocking family,
//! * [`sortkey`] primitives for Sorted Neighborhood blocking: sort-key
//!   derivation and an order-preserving [`RangePartitioner`] built
//!   from a sampled key distribution (consumed by the er-sn crate).

pub mod arena;
pub mod blocking;
pub mod entity;
pub mod io;
pub mod matcher;
pub mod minhash;
pub mod pairs;
pub mod result;
pub mod similarity;
pub mod sortkey;

pub use arena::{PreparedArena, PreparedId};
pub use blocking::{BlockKey, BlockingFunction, ConstantBlocking, PrefixBlocking};
pub use entity::{Entity, EntityId, EntityRef, SourceId};
pub use matcher::{MatchRule, Matcher, MatcherCache, PreparedEntity, PreparedHandle};
pub use minhash::{
    band_hash, banding_probability, estimate_jaccard, shingle_hashes, MinHasher, ShingleScheme,
};
pub use result::{GoldStandard, MatchPair, MatchResult, QualityReport};
pub use similarity::{
    CosineTokens, Jaccard, JaroWinkler, MongeElkan, NGram, NormalizedLevenshtein, Prepared,
    PreparedView, Similarity, TokenListView,
};
pub use sortkey::{AttributeSortKey, RangePartitioner, SortKey, SortKeyFunction};
