//! The entity model.
//!
//! An [`Entity`] is an attributed record — a product offer, a
//! publication, a customer row. Entities carry a [`SourceId`] so the
//! same types serve both deduplication within one source `R` and
//! linkage across two sources `R` and `S` (the paper's Appendix I).

use std::fmt;
use std::sync::Arc;

/// Identifier of an entity, unique *within its source*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u64);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a data source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u8);

impl SourceId {
    /// The first (or only) source, `R` in the paper's notation.
    pub const R: SourceId = SourceId(0);
    /// The second source, `S` in the paper's notation.
    pub const S: SourceId = SourceId(1);
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "R"),
            1 => write!(f, "S"),
            n => write!(f, "src{n}"),
        }
    }
}

/// A globally unique reference to an entity: `(source, id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityRef {
    /// Which source the entity belongs to.
    pub source: SourceId,
    /// The entity id within that source.
    pub id: EntityId,
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.source, self.id)
    }
}

/// An attributed record.
///
/// Attribute storage is a small ordered vector — entities in ER
/// workloads have a handful of attributes, and a vector beats a map
/// both in memory and lookup time at that size. Attribute names are
/// interned per entity via `Arc<str>` so that replicating an entity to
/// multiple reduce tasks (BlockSplit sends split-block entities to `m`
/// tasks) clones cheaply.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Entity {
    id: EntityId,
    source: SourceId,
    attributes: Vec<(Arc<str>, Arc<str>)>,
}

impl Entity {
    /// Creates an entity in source [`SourceId::R`].
    pub fn new(
        id: u64,
        attributes: impl IntoIterator<Item = (impl AsRef<str>, impl AsRef<str>)>,
    ) -> Self {
        Self::with_source(SourceId::R, id, attributes)
    }

    /// Creates an entity in an explicit source.
    pub fn with_source(
        source: SourceId,
        id: u64,
        attributes: impl IntoIterator<Item = (impl AsRef<str>, impl AsRef<str>)>,
    ) -> Self {
        Self {
            id: EntityId(id),
            source,
            attributes: attributes
                .into_iter()
                .map(|(k, v)| (Arc::from(k.as_ref()), Arc::from(v.as_ref())))
                .collect(),
        }
    }

    /// The entity id within its source.
    pub fn id(&self) -> EntityId {
        self.id
    }

    /// The source this entity belongs to.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Global reference `(source, id)`.
    pub fn entity_ref(&self) -> EntityRef {
        EntityRef {
            source: self.source,
            id: self.id,
        }
    }

    /// Value of attribute `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k.as_ref() == name)
            .map(|(_, v)| v.as_ref())
    }

    /// Iterates `(name, value)` attribute pairs in insertion order.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attributes
            .iter()
            .map(|(k, v)| (k.as_ref(), v.as_ref()))
    }

    /// Number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Sets (or replaces) an attribute, returning `self` for chaining.
    pub fn with_attribute(mut self, name: &str, value: &str) -> Self {
        if let Some(slot) = self.attributes.iter_mut().find(|(k, _)| k.as_ref() == name) {
            slot.1 = Arc::from(value);
        } else {
            self.attributes.push((Arc::from(name), Arc::from(value)));
        }
        self
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.entity_ref())?;
        for (i, (k, v)) in self.attributes().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let e = Entity::new(7, [("title", "Canon EOS 5D"), ("brand", "Canon")]);
        assert_eq!(e.id(), EntityId(7));
        assert_eq!(e.source(), SourceId::R);
        assert_eq!(e.get("title"), Some("Canon EOS 5D"));
        assert_eq!(e.get("brand"), Some("Canon"));
        assert_eq!(e.get("price"), None);
        assert_eq!(e.attribute_count(), 2);
    }

    #[test]
    fn with_attribute_replaces_or_appends() {
        let e = Entity::new(1, [("title", "a")])
            .with_attribute("title", "b")
            .with_attribute("year", "2012");
        assert_eq!(e.get("title"), Some("b"));
        assert_eq!(e.get("year"), Some("2012"));
        assert_eq!(e.attribute_count(), 2);
    }

    #[test]
    fn entity_ref_orders_source_first() {
        let r = Entity::with_source(SourceId::R, 9, [("t", "x")]).entity_ref();
        let s = Entity::with_source(SourceId::S, 1, [("t", "x")]).entity_ref();
        assert!(r < s, "all of R sorts before all of S");
    }

    #[test]
    fn display_forms() {
        let e = Entity::with_source(SourceId::S, 3, [("title", "x")]);
        assert_eq!(e.entity_ref().to_string(), "S#3");
        assert_eq!(SourceId(4).to_string(), "src4");
        assert!(e.to_string().contains("title=\"x\""));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let e = Entity::new(1, [("title", "some fairly long product title here")]);
        let c = e.clone();
        assert_eq!(e, c);
        // Attribute storage is shared, not duplicated.
        let (_, v1) = &e.attributes[0];
        let (_, v2) = &c.attributes[0];
        assert!(Arc::ptr_eq(v1, v2));
    }
}
