//! Monge-Elkan similarity: token-level alignment with an inner
//! character-level measure — the classic hybrid for multi-word titles
//! where whole words move around.

use std::sync::Arc;

use super::{Prepared, PreparedView, Similarity, TokenListView};

/// Symmetrized Monge-Elkan: for each token of one string take the best
/// inner-similarity against the other string's tokens, average, and
/// take the mean of both directions (the raw Monge-Elkan score is
/// asymmetric; symmetrizing keeps the crate-wide symmetry invariant).
///
/// Prepared form: the whitespace tokens, each prepared by the *inner*
/// measure — so the quadratic token alignment runs entirely on inner
/// prepared forms.
#[derive(Clone)]
pub struct MongeElkan {
    inner: Arc<dyn Similarity>,
}

impl MongeElkan {
    /// Uses `inner` to compare individual tokens.
    pub fn new(inner: Arc<dyn Similarity>) -> Self {
        Self { inner }
    }

    fn directed(&self, from: TokenListView<'_>, to: TokenListView<'_>) -> f64 {
        if from.is_empty() {
            return if to.is_empty() { 1.0 } else { 0.0 };
        }
        let mut sum = 0.0;
        for i in 0..from.len() {
            let a = from.get(i);
            let mut best: f64 = 0.0;
            for j in 0..to.len() {
                best = best.max(self.inner.sim_view(&a, &to.get(j)));
            }
            sum += best;
        }
        sum / from.len() as f64
    }
}

impl Default for MongeElkan {
    fn default() -> Self {
        Self::new(Arc::new(super::JaroWinkler::default()))
    }
}

impl Similarity for MongeElkan {
    fn prepare(&self, s: &str) -> Prepared {
        Prepared::Tokens(
            s.split_whitespace()
                .map(|t| self.inner.prepare(t))
                .collect(),
        )
    }

    fn sim_view(&self, a: &PreparedView<'_>, b: &PreparedView<'_>) -> f64 {
        let (PreparedView::Tokens(ta), PreparedView::Tokens(tb)) = (a, b) else {
            panic!("expected Prepared::Tokens, got {a:?} / {b:?}");
        };
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        let ab = self.directed(*ta, *tb);
        let ba = self.directed(*tb, *ta);
        ((ab + ba) / 2.0).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "monge-elkan"
    }
}

impl std::fmt::Debug for MongeElkan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MongeElkan")
            .field("inner", &self.inner.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        let m = MongeElkan::default();
        assert!((m.sim("canon eos kit", "canon eos kit") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn word_reordering_barely_matters() {
        let m = MongeElkan::default();
        let s = m.sim("eos canon kit", "canon eos kit");
        assert!(s > 0.99, "got {s}");
    }

    #[test]
    fn token_typos_degrade_gracefully() {
        let m = MongeElkan::default();
        let s = m.sim("canon eos kit", "cannon eos kid");
        assert!(s > 0.8 && s < 1.0, "got {s}");
    }

    #[test]
    fn disjoint_tokens_score_low() {
        let m = MongeElkan::default();
        assert!(m.sim("aaa bbb", "xyz qrs") < 0.5);
    }

    #[test]
    fn empty_inputs() {
        let m = MongeElkan::default();
        assert!((m.sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(m.sim("", "word"), 0.0);
    }

    #[test]
    fn is_symmetric_by_construction() {
        let m = MongeElkan::default();
        // A case where raw Monge-Elkan is asymmetric (different token
        // counts) — the symmetrized version must agree both ways.
        let ab = m.sim("canon", "canon eos mark iii");
        let ba = m.sim("canon eos mark iii", "canon");
        assert!((ab - ba).abs() < 1e-12);
    }
}
