//! Jaccard similarity over whitespace tokens.

use std::collections::BTreeSet;

use super::Similarity;

/// Token-set Jaccard: `|A ∩ B| / |A ∪ B|` over lower-cased whitespace
/// tokens. A natural fit for titles with reordered words.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaccard;

impl Jaccard {
    fn tokens(s: &str) -> BTreeSet<String> {
        s.split_whitespace()
            .map(|t| t.to_lowercase())
            .collect()
    }
}

impl Similarity for Jaccard {
    fn sim(&self, a: &str, b: &str) -> f64 {
        let ta = Self::tokens(a);
        let tb = Self::tokens(b);
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        let inter = ta.intersection(&tb).count();
        let union = ta.union(&tb).count();
        inter as f64 / union as f64
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_overlap() {
        let j = Jaccard;
        assert!((j.sim("canon eos 5d", "canon eos 7d") - 0.5).abs() < 1e-12);
        assert!((j.sim("a b", "b a") - 1.0).abs() < 1e-12, "order-insensitive");
        assert_eq!(j.sim("a b c", "x y z"), 0.0);
    }

    #[test]
    fn case_insensitive_tokens() {
        assert!((Jaccard.sim("Canon EOS", "canon eos") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!((Jaccard.sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(Jaccard.sim("", "word"), 0.0);
        assert!((Jaccard.sim("  ", " ") - 1.0).abs() < 1e-12, "whitespace only == no tokens");
    }

    #[test]
    fn duplicate_tokens_count_once() {
        assert!((Jaccard.sim("a a a b", "a b") - 1.0).abs() < 1e-12);
    }
}
