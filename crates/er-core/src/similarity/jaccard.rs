//! Jaccard similarity over whitespace tokens.

use super::{
    fnv1a_bytes, into_hash_set, jaccard_of_sorted_sets, Prepared, PreparedView, Similarity,
};

/// Token-set Jaccard: `|A ∩ B| / |A ∪ B|` over lower-cased whitespace
/// tokens. A natural fit for titles with reordered words.
///
/// Prepared form: the sorted set of 64-bit token hashes, so a pair
/// comparison is a single allocation-free merge walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaccard;

impl Similarity for Jaccard {
    fn prepare(&self, s: &str) -> Prepared {
        Prepared::HashedSet(into_hash_set(
            s.split_whitespace()
                .map(|t| fnv1a_bytes(t.to_lowercase().into_bytes()))
                .collect(),
        ))
    }

    fn sim_view(&self, a: &PreparedView<'_>, b: &PreparedView<'_>) -> f64 {
        jaccard_of_sorted_sets(a.hashed_set(), b.hashed_set())
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_overlap() {
        let j = Jaccard;
        assert!((j.sim("canon eos 5d", "canon eos 7d") - 0.5).abs() < 1e-12);
        assert!(
            (j.sim("a b", "b a") - 1.0).abs() < 1e-12,
            "order-insensitive"
        );
        assert_eq!(j.sim("a b c", "x y z"), 0.0);
    }

    #[test]
    fn case_insensitive_tokens() {
        assert!((Jaccard.sim("Canon EOS", "canon eos") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!((Jaccard.sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(Jaccard.sim("", "word"), 0.0);
        assert!(
            (Jaccard.sim("  ", " ") - 1.0).abs() < 1e-12,
            "whitespace only == no tokens"
        );
    }

    #[test]
    fn duplicate_tokens_count_once() {
        assert!((Jaccard.sim("a a a b", "a b") - 1.0).abs() < 1e-12);
    }
}
