//! Character n-gram similarity (Jaccard over padded n-grams).

use super::{
    fnv1a_chars, into_hash_set, jaccard_of_sorted_sets, Prepared, PreparedView, Similarity,
};

/// Jaccard similarity over the sets of character `n`-grams, with the
/// string padded by `n−1` sentinel characters on each side so that
/// leading/trailing characters contribute as many grams as inner ones.
///
/// Prepared form: the sorted set of 64-bit gram hashes — one lowercase
/// pass and one hash per gram at prepare time, a merge walk per pair.
#[derive(Debug, Clone, Copy)]
pub struct NGram {
    /// Gram width; must be at least 1.
    pub n: usize,
}

impl NGram {
    /// Trigram similarity, the usual default.
    pub fn trigram() -> Self {
        NGram { n: 3 }
    }

    fn gram_hashes(&self, s: &str) -> Vec<u64> {
        let n = self.n.max(1);
        let pad = n - 1;
        let mut chars: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * pad);
        chars.extend(std::iter::repeat_n('\u{0}', pad));
        chars.extend(s.to_lowercase().chars());
        chars.extend(std::iter::repeat_n('\u{0}', pad));
        if chars.len() < n {
            return Vec::new();
        }
        chars.windows(n).map(fnv1a_chars).collect()
    }
}

impl Default for NGram {
    fn default() -> Self {
        Self::trigram()
    }
}

impl Similarity for NGram {
    fn prepare(&self, s: &str) -> Prepared {
        Prepared::HashedSet(into_hash_set(self.gram_hashes(s)))
    }

    fn sim_view(&self, a: &PreparedView<'_>, b: &PreparedView<'_>) -> f64 {
        jaccard_of_sorted_sets(a.hashed_set(), b.hashed_set())
    }

    fn name(&self) -> &'static str {
        "ngram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert!((NGram::trigram().sim("hello", "hello") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_typo_keeps_high_similarity() {
        let s = NGram::trigram().sim("nikon coolpix", "nikon coolpyx");
        assert!(s > 0.6, "got {s}");
        assert!(s < 1.0);
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        assert_eq!(NGram::trigram().sim("aaa", "bbb"), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert!((NGram::trigram().sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(NGram::trigram().sim("", "abc"), 0.0);
    }

    #[test]
    fn short_strings_still_produce_grams_via_padding() {
        // "a" padded -> grams exist, and distinct letters differ.
        let s = NGram::trigram().sim("a", "b");
        assert_eq!(s, 0.0);
        assert!((NGram::trigram().sim("a", "a") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn n1_degenerates_to_character_jaccard() {
        let uni = NGram { n: 1 };
        assert!((uni.sim("abc", "cba") - 1.0).abs() < 1e-12);
    }
}
