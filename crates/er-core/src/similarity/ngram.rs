//! Character n-gram similarity (Jaccard over padded n-grams).

use std::collections::BTreeSet;

use super::Similarity;

/// Jaccard similarity over the sets of character `n`-grams, with the
/// string padded by `n−1` sentinel characters on each side so that
/// leading/trailing characters contribute as many grams as inner ones.
#[derive(Debug, Clone, Copy)]
pub struct NGram {
    /// Gram width; must be at least 1.
    pub n: usize,
}

impl NGram {
    /// Trigram similarity, the usual default.
    pub fn trigram() -> Self {
        NGram { n: 3 }
    }

    fn grams(&self, s: &str) -> BTreeSet<Vec<char>> {
        let n = self.n.max(1);
        let pad = n - 1;
        let mut chars: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * pad);
        chars.extend(std::iter::repeat_n('\u{0}', pad));
        chars.extend(s.to_lowercase().chars());
        chars.extend(std::iter::repeat_n('\u{0}', pad));
        if chars.len() < n {
            return BTreeSet::new();
        }
        chars.windows(n).map(|w| w.to_vec()).collect()
    }
}

impl Default for NGram {
    fn default() -> Self {
        Self::trigram()
    }
}

impl Similarity for NGram {
    fn sim(&self, a: &str, b: &str) -> f64 {
        let ga = self.grams(a);
        let gb = self.grams(b);
        if ga.is_empty() && gb.is_empty() {
            return 1.0;
        }
        let inter = ga.intersection(&gb).count();
        let union = ga.union(&gb).count();
        inter as f64 / union as f64
    }

    fn name(&self) -> &'static str {
        "ngram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert!((NGram::trigram().sim("hello", "hello") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_typo_keeps_high_similarity() {
        let s = NGram::trigram().sim("nikon coolpix", "nikon coolpyx");
        assert!(s > 0.6, "got {s}");
        assert!(s < 1.0);
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        assert_eq!(NGram::trigram().sim("aaa", "bbb"), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert!((NGram::trigram().sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(NGram::trigram().sim("", "abc"), 0.0);
    }

    #[test]
    fn short_strings_still_produce_grams_via_padding() {
        // "a" padded -> grams exist, and distinct letters differ.
        let s = NGram::trigram().sim("a", "b");
        assert_eq!(s, 0.0);
        assert!((NGram::trigram().sim("a", "a") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn n1_degenerates_to_character_jaccard() {
        let uni = NGram { n: 1 };
        assert!((uni.sim("abc", "cba") - 1.0).abs() < 1e-12);
    }
}
