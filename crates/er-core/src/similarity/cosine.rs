//! Cosine similarity over token frequency vectors.

use std::collections::BTreeMap;

use super::Similarity;

/// Cosine of the angle between lower-cased token *count* vectors.
/// Unlike Jaccard, repeated tokens carry weight, which suits titles
/// with meaningful repetition ("2 x 4 x 2").
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineTokens;

fn counts(s: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for t in s.split_whitespace() {
        *out.entry(t.to_lowercase()).or_insert(0.0) += 1.0;
    }
    out
}

impl Similarity for CosineTokens {
    fn sim(&self, a: &str, b: &str) -> f64 {
        let ca = counts(a);
        let cb = counts(b);
        if ca.is_empty() && cb.is_empty() {
            return 1.0;
        }
        if ca.is_empty() || cb.is_empty() {
            return 0.0;
        }
        let dot: f64 = ca
            .iter()
            .filter_map(|(t, &x)| cb.get(t).map(|&y| x * y))
            .sum();
        let na: f64 = ca.values().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = cb.values().map(|x| x * x).sum::<f64>().sqrt();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_and_reordered() {
        let c = CosineTokens;
        assert!((c.sim("a b c", "a b c") - 1.0).abs() < 1e-12);
        assert!((c.sim("a b c", "c a b") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_token_sets() {
        assert_eq!(CosineTokens.sim("a b", "x y"), 0.0);
    }

    #[test]
    fn repetition_matters() {
        let c = CosineTokens;
        let once = c.sim("spam ham", "spam eggs");
        let thrice = c.sim("spam spam spam ham", "spam eggs");
        assert!(thrice > once, "{thrice} vs {once}");
    }

    #[test]
    fn empty_inputs() {
        assert!((CosineTokens.sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(CosineTokens.sim("", "a"), 0.0);
    }

    #[test]
    fn half_overlap_is_half() {
        // {a,b} vs {a,c}: dot = 1, norms = sqrt(2) -> 0.5.
        assert!((CosineTokens.sim("a b", "a c") - 0.5).abs() < 1e-12);
    }
}
