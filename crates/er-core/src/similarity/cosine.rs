//! Cosine similarity over token frequency vectors.

use std::collections::BTreeMap;

use super::{fnv1a_bytes, Prepared, PreparedView, Similarity};

/// Cosine of the angle between lower-cased token *count* vectors.
/// Unlike Jaccard, repeated tokens carry weight, which suits titles
/// with meaningful repetition ("2 x 4 x 2").
///
/// Prepared form: hash-sorted `(token hash, count)` pairs with the L2
/// norm precomputed, so a pair comparison is one merge-walk dot
/// product and a division.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineTokens;

fn hashed_counts(s: &str) -> Vec<(u64, f64)> {
    let mut counts: BTreeMap<u64, f64> = BTreeMap::new();
    for t in s.split_whitespace() {
        *counts
            .entry(fnv1a_bytes(t.to_lowercase().into_bytes()))
            .or_insert(0.0) += 1.0;
    }
    counts.into_iter().collect()
}

impl Similarity for CosineTokens {
    fn prepare(&self, s: &str) -> Prepared {
        let counts = hashed_counts(s);
        let norm = counts.iter().map(|(_, x)| x * x).sum::<f64>().sqrt();
        Prepared::HashedCounts { counts, norm }
    }

    fn sim_view(&self, a: &PreparedView<'_>, b: &PreparedView<'_>) -> f64 {
        let (
            PreparedView::HashedCounts {
                counts: ca,
                norm: na,
            },
            PreparedView::HashedCounts {
                counts: cb,
                norm: nb,
            },
        ) = (a, b)
        else {
            panic!("expected Prepared::HashedCounts, got {a:?} / {b:?}");
        };
        if ca.is_empty() && cb.is_empty() {
            return 1.0;
        }
        if ca.is_empty() || cb.is_empty() {
            return 0.0;
        }
        let mut dot = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < ca.len() && j < cb.len() {
            match ca[i].0.cmp(&cb[j].0) {
                std::cmp::Ordering::Equal => {
                    dot += ca[i].1 * cb[j].1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_and_reordered() {
        let c = CosineTokens;
        assert!((c.sim("a b c", "a b c") - 1.0).abs() < 1e-12);
        assert!((c.sim("a b c", "c a b") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_token_sets() {
        assert_eq!(CosineTokens.sim("a b", "x y"), 0.0);
    }

    #[test]
    fn repetition_matters() {
        let c = CosineTokens;
        let once = c.sim("spam ham", "spam eggs");
        let thrice = c.sim("spam spam spam ham", "spam eggs");
        assert!(thrice > once, "{thrice} vs {once}");
    }

    #[test]
    fn empty_inputs() {
        assert!((CosineTokens.sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(CosineTokens.sim("", "a"), 0.0);
    }

    #[test]
    fn half_overlap_is_half() {
        // {a,b} vs {a,c}: dot = 1, norms = sqrt(2) -> 0.5.
        assert!((CosineTokens.sim("a b", "a c") - 0.5).abs() < 1e-12);
    }
}
