//! String similarity measures.
//!
//! Every measure maps a pair of strings to `[0, 1]`, is symmetric, and
//! returns `1.0` for identical inputs — invariants enforced by property
//! tests. The paper's evaluation uses normalized edit distance with a
//! minimum similarity of `0.8`; the other measures make the library
//! usable beyond the reproduction.
//!
//! # The prepared-representation API
//!
//! Blocked entity resolution evaluates each entity against every other
//! member of its block: an entity in a block of size *b* takes part in
//! *b − 1* comparisons. The naive [`Similarity::sim`] entry point
//! re-derives the measure's internal representation (lowercased char
//! buffer, gram set, token vector …) from the raw string on **every
//! call**, so that work is repeated *b − 1* times per entity — the
//! dominant allocation cost of the match phase.
//!
//! [`Similarity::prepare`] factors that work out: it converts a string
//! into the measure's cached [`Prepared`] form **once**, and
//! [`Similarity::sim_prepared`] compares two prepared forms without
//! touching the raw strings again. `sim` is a provided method defined
//! as `sim_prepared(prepare(a), prepare(b))`, which makes the two
//! paths bit-exact *by construction* — a property the test suite
//! additionally asserts over a randomized corpus.
//!
//! Prepared forms per measure:
//!
//! | measure | [`Prepared`] variant | contents |
//! |---|---|---|
//! | [`NormalizedLevenshtein`] | `Chars` | Unicode scalar values |
//! | [`JaroWinkler`] | `Chars` | Unicode scalar values |
//! | [`Jaccard`] | `HashedSet` | sorted FNV-1a hashes of lowercased tokens |
//! | [`NGram`] | `HashedSet` | sorted FNV-1a hashes of padded lowercased grams |
//! | [`CosineTokens`] | `HashedCounts` | sorted (token hash, count) + L2 norm |
//! | [`MongeElkan`] | `Tokens` | inner-prepared whitespace tokens |
//!
//! Set-based measures compare 64-bit hashes with a linear merge walk
//! instead of allocating `BTreeSet<String>`s per pair; a collision
//! between two *distinct* grams of the same corpus (probability
//! ≈ 2⁻⁶⁴ per pair) is the only way the hashed result could diverge
//! from exact string sets, and both `sim` and `sim_prepared` share it.
//!
//! Every kernel is written against borrowed [`PreparedView`]s, so the
//! same code path serves heap [`Prepared`] values and entities
//! interned into a [`crate::arena::PreparedArena`] slab; kernels keep
//! their mutable state in thread-local scratch buffers, making a pair
//! comparison allocation-free once the scratch has grown to the
//! corpus's longest string.
//!
//! Higher-level call sites cache prepared forms per entity — see
//! [`crate::matcher::PreparedEntity`] and
//! [`crate::matcher::MatcherCache`].

mod cosine;
mod jaccard;
mod jaro;
mod levenshtein;
mod monge_elkan;
mod ngram;

pub use cosine::CosineTokens;
pub use jaccard::Jaccard;
pub use jaro::JaroWinkler;
pub use levenshtein::{
    levenshtein_distance, levenshtein_distance_chars, levenshtein_within, NormalizedLevenshtein,
};
pub use monge_elkan::MongeElkan;
pub use ngram::NGram;

/// A measure-specific preprocessed representation of one string.
///
/// Produced by [`Similarity::prepare`]; only meaningful when handed
/// back to the **same** measure's [`Similarity::sim_prepared`]
/// (mismatched variants panic — a programming error, not data skew).
#[derive(Debug, Clone, PartialEq)]
pub enum Prepared {
    /// Unicode scalar values of the string (edit-distance family).
    Chars(Vec<char>),
    /// Sorted, deduplicated 64-bit element hashes (set-overlap family).
    HashedSet(Vec<u64>),
    /// Sorted `(element hash, count)` pairs with the precomputed L2
    /// norm of the count vector (cosine family).
    HashedCounts {
        /// Sorted by hash, one entry per distinct element.
        counts: Vec<(u64, f64)>,
        /// `sqrt(Σ count²)`, cached so pairs skip the reduction.
        norm: f64,
    },
    /// Whitespace tokens, each prepared by an inner measure
    /// (hybrid/alignment family).
    Tokens(Vec<Prepared>),
}

impl Prepared {
    /// A borrowed view of this prepared form — the representation the
    /// similarity kernels actually consume. The same [`PreparedView`]
    /// can also be produced from an interned
    /// [`crate::arena::PreparedArena`] slot, which is how the heap and
    /// arena storage paths share one set of kernels (and are bit-exact
    /// by construction).
    pub fn view(&self) -> PreparedView<'_> {
        match self {
            Prepared::Chars(c) => PreparedView::Chars(c),
            Prepared::HashedSet(h) => PreparedView::HashedSet(h),
            Prepared::HashedCounts { counts, norm } => PreparedView::HashedCounts {
                counts,
                norm: *norm,
            },
            Prepared::Tokens(t) => PreparedView::Tokens(TokenListView::Heap(t)),
        }
    }
}

/// A borrowed prepared representation: slices into either a heap
/// [`Prepared`] or a [`crate::arena::PreparedArena`] slab. `Copy`, so
/// the O(b²) compare loop passes it around without touching the heap.
#[derive(Debug, Clone, Copy)]
pub enum PreparedView<'a> {
    /// Unicode scalar values (edit-distance family).
    Chars(&'a [char]),
    /// Sorted, deduplicated element hashes (set-overlap family).
    HashedSet(&'a [u64]),
    /// Sorted `(hash, count)` pairs plus the precomputed L2 norm
    /// (cosine family).
    HashedCounts {
        /// Sorted by hash, one entry per distinct element.
        counts: &'a [(u64, f64)],
        /// `sqrt(Σ count²)`.
        norm: f64,
    },
    /// A token list, each token itself viewable (hybrid family).
    Tokens(TokenListView<'a>),
}

impl<'a> PreparedView<'a> {
    /// The char buffer, panicking on a foreign variant.
    pub(crate) fn chars(self) -> &'a [char] {
        match self {
            PreparedView::Chars(c) => c,
            other => panic!("expected Prepared::Chars, got {other:?}"),
        }
    }

    /// The hashed element set, panicking on a foreign variant.
    pub(crate) fn hashed_set(self) -> &'a [u64] {
        match self {
            PreparedView::HashedSet(h) => h,
            other => panic!("expected Prepared::HashedSet, got {other:?}"),
        }
    }
}

/// A borrowed token list: either the heap token `Vec` of a
/// [`Prepared::Tokens`] or a node span inside a
/// [`crate::arena::PreparedArena`]. Indexed access only — an iterator
/// would need a boxed or enum-dispatched state, and the Monge-Elkan
/// alignment is an index loop anyway.
#[derive(Clone, Copy)]
pub enum TokenListView<'a> {
    /// Tokens owned by a heap [`Prepared::Tokens`].
    Heap(&'a [Prepared]),
    /// Tokens interned in an arena's node slab.
    Arena {
        /// The owning arena.
        arena: &'a crate::arena::PreparedArena,
        /// Span into the arena's node slab.
        nodes: crate::arena::Span,
    },
}

impl<'a> TokenListView<'a> {
    /// Number of tokens.
    pub fn len(self) -> usize {
        match self {
            TokenListView::Heap(t) => t.len(),
            TokenListView::Arena { nodes, .. } => nodes.len(),
        }
    }

    /// True for an empty token list.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// A view of token `index`; panics out of range.
    pub fn get(self, index: usize) -> PreparedView<'a> {
        match self {
            TokenListView::Heap(t) => t[index].view(),
            TokenListView::Arena { arena, nodes } => arena.token_view(nodes, index),
        }
    }
}

impl std::fmt::Debug for TokenListView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TokenListView(len={})", self.len())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte stream: deterministic across runs and platforms
/// (important: prepared forms must never make job output depend on
/// hasher seeding).
#[inline]
pub(crate) fn fnv1a_bytes(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the UTF-8 encoding of a char slice, allocation-free.
#[inline]
pub(crate) fn fnv1a_chars(chars: &[char]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut buf = [0u8; 4];
    for &c in chars {
        for &b in c.encode_utf8(&mut buf).as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Sorts and deduplicates a hash multiset into set form.
pub(crate) fn into_hash_set(mut hashes: Vec<u64>) -> Vec<u64> {
    hashes.sort_unstable();
    hashes.dedup();
    hashes
}

/// `|A ∩ B| / |A ∪ B|` over two sorted deduplicated hash slices via a
/// linear merge walk; the shared kernel of [`Jaccard`] and [`NGram`].
/// Both sets empty compares as identical (`1.0`).
pub(crate) fn jaccard_of_sorted_sets(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// A symmetric string similarity in `[0, 1]`.
///
/// Implementors define [`prepare`](Similarity::prepare) and the view
/// kernel [`sim_view`](Similarity::sim_view);
/// [`sim_prepared`](Similarity::sim_prepared) and the string-level
/// [`sim`](Similarity::sim) are derived, so every entry point —
/// string, heap-prepared, or arena-interned — agrees bit-exactly by
/// construction.
pub trait Similarity: Send + Sync {
    /// Preprocesses `s` into this measure's cached representation.
    ///
    /// Call once per string, then evaluate all its pairs through
    /// [`sim_prepared`](Similarity::sim_prepared) (or intern into a
    /// [`crate::arena::PreparedArena`] and use
    /// [`sim_view`](Similarity::sim_view)).
    fn prepare(&self, s: &str) -> Prepared;

    /// Similarity of two prepared views; `1.0` means identical. The
    /// single kernel both storage paths (heap [`Prepared`] and arena
    /// slabs) funnel into — implementations must not allocate per
    /// call beyond thread-local scratch, which is what keeps the
    /// blocked O(b²) compare loop allocation-free after warm-up.
    ///
    /// # Panics
    /// If either argument was prepared by a different measure family.
    fn sim_view(&self, a: &PreparedView<'_>, b: &PreparedView<'_>) -> f64;

    /// Similarity of two prepared strings; `1.0` means identical.
    ///
    /// Provided as `sim_view(a.view(), b.view())`.
    ///
    /// # Panics
    /// If either argument was prepared by a different measure family.
    fn sim_prepared(&self, a: &Prepared, b: &Prepared) -> f64 {
        self.sim_view(&a.view(), &b.view())
    }

    /// Similarity of `a` and `b`; `1.0` means identical.
    ///
    /// Provided as `sim_prepared(prepare(a), prepare(b))` — override
    /// only with an implementation that preserves that equality.
    fn sim(&self, a: &str, b: &str) -> f64 {
        self.sim_prepared(&self.prepare(a), &self.prepare(b))
    }

    /// Threshold-aware comparison: `Some(sim)` iff `sim >= floor`,
    /// where the returned value is **bit-identical** to
    /// [`sim_view`](Similarity::sim_view).
    ///
    /// The default computes the full similarity and compares. Measures
    /// with a cheaper bounded kernel override it to abandon hopeless
    /// pairs early — [`NormalizedLevenshtein`] evaluates only a
    /// diagonal DP band wide enough for distances that can still reach
    /// `floor`, which is what makes thresholded matching at paper
    /// scale affordable.
    fn sim_view_at_least(
        &self,
        a: &PreparedView<'_>,
        b: &PreparedView<'_>,
        floor: f64,
    ) -> Option<f64> {
        let s = self.sim_view(a, b);
        (s >= floor).then_some(s)
    }

    /// [`sim_view_at_least`](Similarity::sim_view_at_least) over heap
    /// prepared forms.
    fn sim_prepared_at_least(&self, a: &Prepared, b: &Prepared, floor: f64) -> Option<f64> {
        self.sim_view_at_least(&a.view(), &b.view(), floor)
    }

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_measures() -> Vec<Box<dyn Similarity>> {
        vec![
            Box::new(NormalizedLevenshtein),
            Box::new(JaroWinkler::default()),
            Box::new(Jaccard),
            Box::new(NGram::trigram()),
            Box::new(CosineTokens),
            Box::new(MongeElkan::default()),
        ]
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            all_measures().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned values guard against accidental hasher changes, which
        // would silently invalidate any persisted prepared forms.
        assert_eq!(fnv1a_bytes(*b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_bytes(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_chars(&['a']), fnv1a_bytes(*b"a"));
        assert_eq!(fnv1a_chars(&['é']), fnv1a_bytes("é".bytes()));
    }

    #[test]
    fn jaccard_kernel_merge_walk() {
        assert_eq!(jaccard_of_sorted_sets(&[], &[]), 1.0);
        assert_eq!(jaccard_of_sorted_sets(&[1], &[]), 0.0);
        assert_eq!(jaccard_of_sorted_sets(&[1, 2], &[1, 2]), 1.0);
        assert!((jaccard_of_sorted_sets(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expected Prepared::Chars")]
    fn mismatched_prepared_variant_panics() {
        let lev = NormalizedLevenshtein;
        let wrong = Jaccard.prepare("some tokens");
        let ok = lev.prepare("abc");
        let _ = lev.sim_prepared(&ok, &wrong);
    }

    proptest! {
        #[test]
        fn identity_is_one(s in "\\PC{0,24}") {
            for m in all_measures() {
                prop_assert!((m.sim(&s, &s) - 1.0).abs() < 1e-12,
                    "{} not 1.0 on identical inputs {s:?}", m.name());
            }
        }

        #[test]
        fn symmetric(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            for m in all_measures() {
                let ab = m.sim(&a, &b);
                let ba = m.sim(&b, &a);
                prop_assert!((ab - ba).abs() < 1e-12,
                    "{} asymmetric on {a:?}/{b:?}: {ab} vs {ba}", m.name());
            }
        }

        #[test]
        fn bounded(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            for m in all_measures() {
                let s = m.sim(&a, &b);
                prop_assert!((0.0..=1.0).contains(&s),
                    "{} out of bounds on {a:?}/{b:?}: {s}", m.name());
            }
        }

        #[test]
        fn prepared_path_is_bit_exact(a in "\\PC{0,20}", b in "\\PC{0,20}") {
            // The contract the load-balance reducers rely on: caching
            // prepared entities must never change a match decision.
            // Bit-exact equality, not epsilon closeness.
            for m in all_measures() {
                let (pa, pb) = (m.prepare(&a), m.prepare(&b));
                let prepared = m.sim_prepared(&pa, &pb);
                let direct = m.sim(&a, &b);
                prop_assert!(
                    prepared == direct && prepared.to_bits() == direct.to_bits(),
                    "{} prepared path diverged on {a:?}/{b:?}: {prepared} vs {direct}",
                    m.name()
                );
            }
        }

        #[test]
        fn threshold_kernel_agrees_for_every_measure(
            a in "\\PC{0,16}",
            b in "\\PC{0,16}",
            floor_steps in 0u32..11,
        ) {
            let floor = floor_steps as f64 / 10.0;
            for m in all_measures() {
                let (pa, pb) = (m.prepare(&a), m.prepare(&b));
                let s = m.sim_prepared(&pa, &pb);
                prop_assert_eq!(
                    m.sim_prepared_at_least(&pa, &pb, floor).map(f64::to_bits),
                    (s >= floor).then(|| s.to_bits()),
                    "{} diverged on {:?}/{:?} at floor {}", m.name(), a, b, floor
                );
            }
        }

        #[test]
        fn prepare_is_pure(s in "\\PC{0,20}") {
            for m in all_measures() {
                prop_assert_eq!(m.prepare(&s), m.prepare(&s),
                    "{} prepare not deterministic", m.name());
            }
        }
    }
}
