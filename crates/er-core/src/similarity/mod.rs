//! String similarity measures.
//!
//! Every measure maps a pair of strings to `[0, 1]`, is symmetric, and
//! returns `1.0` for identical inputs — invariants enforced by property
//! tests. The paper's evaluation uses normalized edit distance with a
//! minimum similarity of `0.8`; the other measures make the library
//! usable beyond the reproduction.

mod cosine;
mod jaccard;
mod jaro;
mod levenshtein;
mod monge_elkan;
mod ngram;

pub use cosine::CosineTokens;
pub use jaccard::Jaccard;
pub use jaro::JaroWinkler;
pub use levenshtein::{levenshtein_distance, levenshtein_within, NormalizedLevenshtein};
pub use monge_elkan::MongeElkan;
pub use ngram::NGram;

/// A symmetric string similarity in `[0, 1]`.
pub trait Similarity: Send + Sync {
    /// Similarity of `a` and `b`; `1.0` means identical.
    fn sim(&self, a: &str, b: &str) -> f64;

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_measures() -> Vec<Box<dyn Similarity>> {
        vec![
            Box::new(NormalizedLevenshtein),
            Box::new(JaroWinkler::default()),
            Box::new(Jaccard),
            Box::new(NGram::trigram()),
            Box::new(CosineTokens),
            Box::new(MongeElkan::default()),
        ]
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            all_measures().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
    }

    proptest! {
        #[test]
        fn identity_is_one(s in "\\PC{0,24}") {
            for m in all_measures() {
                prop_assert!((m.sim(&s, &s) - 1.0).abs() < 1e-12,
                    "{} not 1.0 on identical inputs {s:?}", m.name());
            }
        }

        #[test]
        fn symmetric(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            for m in all_measures() {
                let ab = m.sim(&a, &b);
                let ba = m.sim(&b, &a);
                prop_assert!((ab - ba).abs() < 1e-12,
                    "{} asymmetric on {a:?}/{b:?}: {ab} vs {ba}", m.name());
            }
        }

        #[test]
        fn bounded(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            for m in all_measures() {
                let s = m.sim(&a, &b);
                prop_assert!((0.0..=1.0).contains(&s),
                    "{} out of bounds on {a:?}/{b:?}: {s}", m.name());
            }
        }
    }
}
