//! Jaro and Jaro-Winkler similarity — the classic record-linkage
//! measure for short name-like strings.

use std::cell::RefCell;

use super::{Prepared, PreparedView, Similarity};

thread_local! {
    /// Match bookkeeping (`b_used`, matched chars of each side) reused
    /// across calls so the hot compare loop never allocates once the
    /// buffers have grown to the corpus's longest string.
    static JARO_SCRATCH: RefCell<(Vec<bool>, Vec<char>, Vec<char>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

fn jaro(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    JARO_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let (b_used, matches_a, matches_b) = &mut *scratch;
        b_used.clear();
        b_used.resize(b.len(), false);
        matches_a.clear();
        matches_b.clear();
        for (i, &ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for j in lo..hi {
                if !b_used[j] && b[j] == ca {
                    b_used[j] = true;
                    matches_a.push(ca);
                    break;
                }
            }
        }
        let m = matches_a.len();
        if m == 0 {
            return 0.0;
        }
        matches_b.extend(
            b.iter()
                .zip(b_used.iter())
                .filter(|(_, &used)| used)
                .map(|(&c, _)| c),
        );
        let transpositions = matches_a
            .iter()
            .zip(matches_b.iter())
            .filter(|(x, y)| x != y)
            .count()
            / 2;
        let m = m as f64;
        let t = transpositions as f64;
        (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
    })
}

/// Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus of up
/// to four characters.
#[derive(Debug, Clone, Copy)]
pub struct JaroWinkler {
    /// Prefix scaling factor, conventionally `0.1` (capped at `0.25`
    /// so the result stays within `[0, 1]`).
    pub prefix_scale: f64,
}

impl Default for JaroWinkler {
    fn default() -> Self {
        Self { prefix_scale: 0.1 }
    }
}

impl Similarity for JaroWinkler {
    fn prepare(&self, s: &str) -> Prepared {
        Prepared::Chars(s.chars().collect())
    }

    fn sim_view(&self, a: &PreparedView<'_>, b: &PreparedView<'_>) -> f64 {
        let (ac, bc) = (a.chars(), b.chars());
        let j = jaro(ac, bc);
        let prefix = ac
            .iter()
            .zip(bc.iter())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count();
        let scale = self.prefix_scale.clamp(0.0, 0.25);
        (j + prefix as f64 * scale * (1.0 - j)).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "jaro-winkler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jw(a: &str, b: &str) -> f64 {
        JaroWinkler::default().sim(a, b)
    }

    #[test]
    fn textbook_values() {
        // Classic Winkler examples (to 3 decimal places).
        assert!((jw("MARTHA", "MARHTA") - 0.961).abs() < 1e-3);
        assert!((jw("DIXON", "DICKSONX") - 0.813).abs() < 1e-3);
        assert!((jw("JELLYFISH", "SMELLYFISH") - 0.896).abs() < 1e-3);
    }

    #[test]
    fn identical_and_disjoint() {
        assert!((jw("abc", "abc") - 1.0).abs() < 1e-12);
        assert_eq!(jw("abc", "xyz"), 0.0);
        assert!((jw("", "") - 1.0).abs() < 1e-12);
        assert_eq!(jw("", "abc"), 0.0);
    }

    #[test]
    fn prefix_bonus_raises_score() {
        let plain = JaroWinkler { prefix_scale: 0.0 };
        assert!(jw("prefixed", "prefixes") > plain.sim("prefixed", "prefixes"));
    }

    #[test]
    fn oversized_scale_is_clamped() {
        let wild = JaroWinkler { prefix_scale: 9.0 };
        let s = wild.sim("abcd", "abcx");
        assert!((0.0..=1.0).contains(&s));
    }
}
