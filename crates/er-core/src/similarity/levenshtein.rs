//! Edit distance (Levenshtein) and its normalized similarity — the
//! paper's match function: "Two entities were compared by computing
//! the edit distance of their title. Two entities with a minimal
//! similarity of 0.8 were regarded as matches."

use super::Similarity;

/// Unrestricted Levenshtein distance over Unicode scalar values,
/// two-row dynamic programming, `O(|a|·|b|)` time and `O(min)` space.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Keep the inner row the shorter one for cache friendliness.
    let (long, short) = if a_chars.len() >= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            let del = prev[j + 1] + 1;
            let ins = cur[j] + 1;
            cur[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Banded early-exit check: is `levenshtein_distance(a, b) <= k`?
///
/// Runs in `O(k·max(|a|,|b|))` by evaluating only a diagonal band of
/// width `2k+1`, which is what makes thresholded matching at paper
/// scale affordable: a 0.8 similarity threshold on titles bounds the
/// permissible distance to 20 % of the longer title.
pub fn levenshtein_within(a: &str, b: &str, k: usize) -> bool {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    let (n, m) = (a_chars.len(), b_chars.len());
    if n.abs_diff(m) > k {
        return false;
    }
    if n == 0 {
        return m <= k;
    }
    if m == 0 {
        return n <= k;
    }
    const BIG: usize = usize::MAX / 2;
    // prev[j] = distance for prefix lengths (i, j); band-limited.
    let mut prev: Vec<usize> = vec![BIG; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(k.min(m) + 1) {
        *p = j;
    }
    let mut cur: Vec<usize> = vec![BIG; m + 1];
    for i in 1..=n {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(m);
        if lo > hi {
            return false;
        }
        cur[lo - 1] = BIG;
        cur[lo.saturating_sub(1)] = if lo == 1 { i } else { BIG };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a_chars[i - 1] != b_chars[j - 1]);
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        if hi < m {
            cur[hi + 1] = BIG;
        }
        if row_min > k {
            return false;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] <= k
}

/// `1 − d(a,b) / max(|a|,|b|)`: the similarity the paper thresholds at
/// 0.8. Empty-vs-empty compares as identical (similarity 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedLevenshtein;

impl Similarity for NormalizedLevenshtein {
    fn sim(&self, a: &str, b: &str) -> f64 {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return 1.0;
        }
        1.0 - levenshtein_distance(a, b) as f64 / max_len as f64
    }

    fn name(&self) -> &'static str {
        "levenshtein"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("", ""), 0);
        assert_eq!(levenshtein_distance("same", "same"), 0);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        assert_eq!(levenshtein_distance("café", "cafe"), 1);
        assert_eq!(levenshtein_distance("日本語", "日本"), 1);
    }

    #[test]
    fn normalized_similarity_examples() {
        let s = NormalizedLevenshtein;
        assert!((s.sim("abcd", "abcd") - 1.0).abs() < 1e-12);
        assert!((s.sim("abcde", "abcdX") - 0.8).abs() < 1e-12);
        assert!((s.sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(s.sim("", "xyz"), 0.0);
    }

    #[test]
    fn banded_check_agrees_on_fixed_cases() {
        assert!(levenshtein_within("kitten", "sitting", 3));
        assert!(!levenshtein_within("kitten", "sitting", 2));
        assert!(levenshtein_within("", "", 0));
        assert!(!levenshtein_within("abcdef", "", 3));
        assert!(levenshtein_within("abc", "abc", 0));
    }

    proptest! {
        #[test]
        fn banded_agrees_with_full_dp(a in "[a-d]{0,12}", b in "[a-d]{0,12}", k in 0usize..6) {
            let d = levenshtein_distance(&a, &b);
            prop_assert_eq!(levenshtein_within(&a, &b, k), d <= k,
                "a={:?} b={:?} d={} k={}", a, b, d, k);
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            let ab = levenshtein_distance(&a, &b);
            let bc = levenshtein_distance(&b, &c);
            let ac = levenshtein_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn distance_bounded_by_longer_string(a in "\\PC{0,10}", b in "\\PC{0,10}") {
            let d = levenshtein_distance(&a, &b);
            let max = a.chars().count().max(b.chars().count());
            let min = a.chars().count().min(b.chars().count());
            prop_assert!(d <= max);
            prop_assert!(d >= max - min);
        }
    }
}
