//! Edit distance (Levenshtein) and its normalized similarity — the
//! paper's match function: "Two entities were compared by computing
//! the edit distance of their title. Two entities with a minimal
//! similarity of 0.8 were regarded as matches."

use std::cell::RefCell;

use super::{Prepared, PreparedView, Similarity};

thread_local! {
    /// The two DP rows both Levenshtein kernels work in. Thread-local
    /// so the O(b²) compare loop performs zero heap allocations after
    /// the rows have grown to the corpus's longest string; `RefCell`
    /// borrows are confined to one (non-recursive) kernel invocation.
    static DP_ROWS: RefCell<(Vec<usize>, Vec<usize>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Unrestricted Levenshtein distance over Unicode scalar values.
///
/// Convenience wrapper over [`levenshtein_distance_chars`] for one-off
/// string pairs; hot loops should decode to chars once and call the
/// slice form directly.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_distance_chars(&a_chars, &b_chars)
}

/// Levenshtein distance over pre-decoded scalar values, two-row
/// dynamic programming, `O(|a|·|b|)` time and `O(min)` space — the
/// rows live in thread-local scratch, so steady-state calls do not
/// allocate.
pub fn levenshtein_distance_chars(a_chars: &[char], b_chars: &[char]) -> usize {
    // Keep the inner row the shorter one for cache friendliness.
    let (long, short) = if a_chars.len() >= b_chars.len() {
        (a_chars, b_chars)
    } else {
        (b_chars, a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    DP_ROWS.with(|rows| {
        let mut rows = rows.borrow_mut();
        let (prev, cur) = &mut *rows;
        prev.clear();
        prev.extend(0..=short.len());
        cur.clear();
        cur.resize(short.len() + 1, 0);
        for (i, &lc) in long.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &sc) in short.iter().enumerate() {
                let sub = prev[j] + usize::from(lc != sc);
                let del = prev[j + 1] + 1;
                let ins = cur[j] + 1;
                cur[j + 1] = sub.min(del).min(ins);
            }
            std::mem::swap(prev, cur);
        }
        prev[short.len()]
    })
}

/// Banded early-exit check: is `levenshtein_distance(a, b) <= k`?
///
/// Runs in `O(k·max(|a|,|b|))` by evaluating only a diagonal band of
/// width `2k+1`, which is what makes thresholded matching at paper
/// scale affordable: a 0.8 similarity threshold on titles bounds the
/// permissible distance to 20 % of the longer title.
pub fn levenshtein_within(a: &str, b: &str, k: usize) -> bool {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_bounded_chars(&a_chars, &b_chars, k).is_some()
}

/// Banded Levenshtein over pre-decoded scalars: `Some(d)` with the
/// *exact* distance when `d <= k`, `None` when the distance exceeds
/// `k` (detected early, without filling the full DP matrix).
///
/// The thresholded-matching kernel: [`crate::Matcher`] derives the
/// largest admissible distance from its similarity threshold and calls
/// this instead of the unrestricted `O(|a|·|b|)` DP.
pub fn levenshtein_bounded_chars(a_chars: &[char], b_chars: &[char], k: usize) -> Option<usize> {
    let (n, m) = (a_chars.len(), b_chars.len());
    if n.abs_diff(m) > k {
        return None;
    }
    if n == 0 {
        return (m <= k).then_some(m);
    }
    if m == 0 {
        return (n <= k).then_some(n);
    }
    const BIG: usize = usize::MAX / 2;
    DP_ROWS.with(|rows| {
        let mut rows = rows.borrow_mut();
        let (prev, cur) = &mut *rows;
        // prev[j] = distance for prefix lengths (i, j); band-limited.
        // clear + resize refills every cell with BIG, so reusing the
        // scratch rows is bit-identical to freshly allocated ones.
        prev.clear();
        prev.resize(m + 1, BIG);
        for (j, p) in prev.iter_mut().enumerate().take(k.min(m) + 1) {
            *p = j;
        }
        cur.clear();
        cur.resize(m + 1, BIG);
        for i in 1..=n {
            let lo = i.saturating_sub(k).max(1);
            let hi = (i + k).min(m);
            if lo > hi {
                return None;
            }
            cur[lo - 1] = if lo == 1 { i } else { BIG };
            let mut row_min = cur[lo - 1];
            for j in lo..=hi {
                let sub = prev[j - 1] + usize::from(a_chars[i - 1] != b_chars[j - 1]);
                let del = prev[j].saturating_add(1);
                let ins = cur[j - 1].saturating_add(1);
                cur[j] = sub.min(del).min(ins);
                row_min = row_min.min(cur[j]);
            }
            if hi < m {
                cur[hi + 1] = BIG;
            }
            if row_min > k {
                return None;
            }
            std::mem::swap(prev, cur);
        }
        (prev[m] <= k).then_some(prev[m])
    })
}

/// `1 − d(a,b) / max(|a|,|b|)`: the similarity the paper thresholds at
/// 0.8. Empty-vs-empty compares as identical (similarity 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedLevenshtein;

impl Similarity for NormalizedLevenshtein {
    fn prepare(&self, s: &str) -> Prepared {
        Prepared::Chars(s.chars().collect())
    }

    fn sim_view(&self, a: &PreparedView<'_>, b: &PreparedView<'_>) -> f64 {
        let (ac, bc) = (a.chars(), b.chars());
        let max_len = ac.len().max(bc.len());
        if max_len == 0 {
            return 1.0;
        }
        1.0 - levenshtein_distance_chars(ac, bc) as f64 / max_len as f64
    }

    /// Banded fast path: only distances `d` with
    /// `1 − d/max_len >= floor` can match, so the DP evaluates a
    /// diagonal band of width `2k+1` instead of the full matrix and
    /// abandons the pair as soon as a row exceeds `k`. Bit-exact with
    /// the unrestricted path: a returned distance inside the band *is*
    /// the true distance, and the similarity is computed by the same
    /// expression.
    fn sim_view_at_least(
        &self,
        a: &PreparedView<'_>,
        b: &PreparedView<'_>,
        floor: f64,
    ) -> Option<f64> {
        let (ac, bc) = (a.chars(), b.chars());
        let max_len = ac.len().max(bc.len());
        if max_len == 0 {
            return (1.0 >= floor).then_some(1.0);
        }
        if 1.0 < floor || floor.is_nan() {
            // Nothing reaches an unattainable (or NaN) floor; mirrors
            // `sim >= floor` being false for every pair.
            return None;
        }
        let sim_of = |d: usize| 1.0 - d as f64 / max_len as f64;
        // Largest admissible distance under the *exact f64 predicate*
        // the slow path applies — derived by nudging a float estimate
        // down until the predicate holds, so threshold-boundary pairs
        // (e.g. distance 2 at length 10 against floor 0.8) behave
        // identically to `sim_prepared(..) >= floor`.
        let mut k = (((1.0 - floor) * max_len as f64).ceil() as usize + 1).min(max_len);
        while k > 0 && sim_of(k) < floor {
            k -= 1;
        }
        levenshtein_bounded_chars(ac, bc, k).map(sim_of)
    }

    fn name(&self) -> &'static str {
        "levenshtein"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("", ""), 0);
        assert_eq!(levenshtein_distance("same", "same"), 0);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        assert_eq!(levenshtein_distance("café", "cafe"), 1);
        assert_eq!(levenshtein_distance("日本語", "日本"), 1);
    }

    #[test]
    fn normalized_similarity_examples() {
        let s = NormalizedLevenshtein;
        assert!((s.sim("abcd", "abcd") - 1.0).abs() < 1e-12);
        assert!((s.sim("abcde", "abcdX") - 0.8).abs() < 1e-12);
        assert!((s.sim("", "") - 1.0).abs() < 1e-12);
        assert_eq!(s.sim("", "xyz"), 0.0);
    }

    #[test]
    fn banded_check_agrees_on_fixed_cases() {
        assert!(levenshtein_within("kitten", "sitting", 3));
        assert!(!levenshtein_within("kitten", "sitting", 2));
        assert!(levenshtein_within("", "", 0));
        assert!(!levenshtein_within("abcdef", "", 3));
        assert!(levenshtein_within("abc", "abc", 0));
    }

    #[test]
    fn bounded_returns_exact_distance_or_none() {
        let c = |s: &str| s.chars().collect::<Vec<char>>();
        assert_eq!(
            levenshtein_bounded_chars(&c("kitten"), &c("sitting"), 3),
            Some(3)
        );
        assert_eq!(
            levenshtein_bounded_chars(&c("kitten"), &c("sitting"), 2),
            None
        );
        assert_eq!(levenshtein_bounded_chars(&c(""), &c(""), 0), Some(0));
        assert_eq!(levenshtein_bounded_chars(&c("abc"), &c("abc"), 0), Some(0));
        assert_eq!(levenshtein_bounded_chars(&c("abcdef"), &c(""), 3), None);
    }

    #[test]
    fn thresholded_kernel_handles_the_exact_boundary() {
        // Distance 2 at length 10 is similarity 0.8 — must match a 0.8
        // floor, exactly like the full-scoring path (the paper's `>=`).
        let s = NormalizedLevenshtein;
        let (pa, pb) = (s.prepare("abcdefghij"), s.prepare("abcdefghXY"));
        let fast = s.sim_prepared_at_least(&pa, &pb, 0.8);
        assert_eq!(fast, Some(s.sim_prepared(&pa, &pb)));
        // One more edit falls below the floor.
        let pc = s.prepare("abcdefgXYZ");
        assert_eq!(s.sim_prepared_at_least(&pa, &pc, 0.8), None);
        // Unattainable and NaN floors match nothing.
        assert_eq!(s.sim_prepared_at_least(&pa, &pb, 1.5), None);
        assert_eq!(s.sim_prepared_at_least(&pa, &pb, f64::NAN), None);
        // Floor 0 accepts everything, still with the exact score.
        assert_eq!(
            s.sim_prepared_at_least(&pa, &pc, 0.0),
            Some(s.sim_prepared(&pa, &pc))
        );
    }

    proptest! {
        #[test]
        fn banded_agrees_with_full_dp(a in "[a-d]{0,12}", b in "[a-d]{0,12}", k in 0usize..6) {
            let d = levenshtein_distance(&a, &b);
            prop_assert_eq!(levenshtein_within(&a, &b, k), d <= k,
                "a={:?} b={:?} d={} k={}", a, b, d, k);
        }

        #[test]
        fn bounded_distance_is_exact_within_band(
            a in "[a-d]{0,12}",
            b in "[a-d]{0,12}",
            k in 0usize..8,
        ) {
            let d = levenshtein_distance(&a, &b);
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            prop_assert_eq!(
                levenshtein_bounded_chars(&ac, &bc, k),
                (d <= k).then_some(d),
                "a={:?} b={:?} d={} k={}", a, b, d, k
            );
        }

        #[test]
        fn thresholded_kernel_is_bit_exact_with_slow_path(
            a in "[a-c]{0,14}",
            b in "[a-c]{0,14}",
            floor_steps in 0u32..21,
        ) {
            // Sweep floors over [0, 1] incl. awkward fractions; the
            // banded decision and score must equal the full path's.
            let floor = floor_steps as f64 / 20.0;
            let s = NormalizedLevenshtein;
            let (pa, pb) = (s.prepare(&a), s.prepare(&b));
            let slow = s.sim_prepared(&pa, &pb);
            let expected = (slow >= floor).then(|| slow.to_bits());
            let got = s.sim_prepared_at_least(&pa, &pb, floor).map(f64::to_bits);
            prop_assert_eq!(got, expected,
                "a={:?} b={:?} floor={}", a, b, floor);
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            let ab = levenshtein_distance(&a, &b);
            let bc = levenshtein_distance(&b, &c);
            let ac = levenshtein_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn distance_bounded_by_longer_string(a in "\\PC{0,10}", b in "\\PC{0,10}") {
            let d = levenshtein_distance(&a, &b);
            let max = a.chars().count().max(b.chars().count());
            let min = a.chars().count().min(b.chars().count());
            prop_assert!(d <= max);
            prop_assert!(d >= max - min);
        }
    }
}
