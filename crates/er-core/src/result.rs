//! Match results, gold standards, and quality metrics.

use std::collections::BTreeSet;

use crate::entity::EntityRef;

/// An unordered pair of distinct entities considered a match; stored
/// normalized (`lo < hi`) so `(a,b)` and `(b,a)` coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchPair {
    lo: EntityRef,
    hi: EntityRef,
}

impl MatchPair {
    /// Creates a normalized pair.
    ///
    /// # Panics
    /// If `a == b` — an entity never matches itself in ER output.
    pub fn new(a: EntityRef, b: EntityRef) -> Self {
        assert!(a != b, "self-pairs are not valid matches: {a}");
        if a < b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    pub fn lo(&self) -> EntityRef {
        self.lo
    }

    /// The larger endpoint.
    pub fn hi(&self) -> EntityRef {
        self.hi
    }
}

impl std::fmt::Display for MatchPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

/// A deduplicated set of matches with their best similarity scores.
///
/// Load-balancing strategies may evaluate the same pair in different
/// reduce tasks only if the algorithm is broken; the one legitimate
/// duplication source is multi-pass blocking, where a pair can share
/// several blocks. Either way, inserting twice is safe: the set keeps
/// the maximum score seen.
#[derive(Debug, Clone, Default)]
pub struct MatchResult {
    pairs: std::collections::BTreeMap<MatchPair, f64>,
}

impl MatchResult {
    /// An empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a match; returns `true` if the pair was new.
    pub fn insert(&mut self, pair: MatchPair, score: f64) -> bool {
        match self.pairs.get_mut(&pair) {
            Some(existing) => {
                if score > *existing {
                    *existing = score;
                }
                false
            }
            None => {
                self.pairs.insert(pair, score);
                true
            }
        }
    }

    /// Merges another result into this one.
    pub fn union(&mut self, other: &MatchResult) {
        for (&pair, &score) in &other.pairs {
            self.insert(pair, score);
        }
    }

    /// Does the result contain this pair?
    pub fn contains(&self, pair: &MatchPair) -> bool {
        self.pairs.contains_key(pair)
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates `(pair, score)` in pair order.
    pub fn iter(&self) -> impl Iterator<Item = (MatchPair, f64)> + '_ {
        self.pairs.iter().map(|(&p, &s)| (p, s))
    }

    /// The pair set without scores (for equality tests between
    /// strategies).
    pub fn pair_set(&self) -> BTreeSet<MatchPair> {
        self.pairs.keys().copied().collect()
    }
}

/// The set of truly matching pairs, for quality evaluation of
/// synthetic datasets with injected duplicates.
#[derive(Debug, Clone, Default)]
pub struct GoldStandard {
    pairs: BTreeSet<MatchPair>,
}

impl GoldStandard {
    /// Builds a gold standard from known duplicate pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = MatchPair>) -> Self {
        Self {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// Number of true matches.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no gold pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Is the pair a true match?
    pub fn contains(&self, pair: &MatchPair) -> bool {
        self.pairs.contains(pair)
    }

    /// Iterates gold pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = MatchPair> + '_ {
        self.pairs.iter().copied()
    }
}

/// Precision / recall / F1 of a match result against a gold standard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Pairs reported and truly matching.
    pub true_positives: usize,
    /// Pairs reported but not in the gold standard.
    pub false_positives: usize,
    /// Gold pairs the result missed.
    pub false_negatives: usize,
}

impl QualityReport {
    /// Compares `result` with `gold`.
    pub fn evaluate(result: &MatchResult, gold: &GoldStandard) -> Self {
        let mut tp = 0;
        let mut fp = 0;
        for (pair, _) in result.iter() {
            if gold.contains(&pair) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        let fn_ = gold.len() - tp;
        Self {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
        }
    }

    /// `tp / (tp + fp)`; 1.0 for an empty result.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 for an empty gold standard.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityId, SourceId};

    fn eref(src: u8, id: u64) -> EntityRef {
        EntityRef {
            source: SourceId(src),
            id: EntityId(id),
        }
    }

    #[test]
    fn pairs_normalize_order() {
        let p1 = MatchPair::new(eref(0, 5), eref(0, 2));
        let p2 = MatchPair::new(eref(0, 2), eref(0, 5));
        assert_eq!(p1, p2);
        assert_eq!(p1.lo(), eref(0, 2));
        assert_eq!(p1.hi(), eref(0, 5));
    }

    #[test]
    #[should_panic(expected = "self-pairs")]
    fn self_pair_rejected() {
        let _ = MatchPair::new(eref(0, 1), eref(0, 1));
    }

    #[test]
    fn cross_source_pairs_are_valid() {
        let p = MatchPair::new(eref(1, 1), eref(0, 1));
        assert_eq!(p.lo().source, SourceId::R);
        assert_eq!(p.hi().source, SourceId::S);
    }

    #[test]
    fn insert_dedups_and_keeps_best_score() {
        let mut r = MatchResult::new();
        let p = MatchPair::new(eref(0, 1), eref(0, 2));
        assert!(r.insert(p, 0.8));
        assert!(!r.insert(p, 0.9));
        assert!(!r.insert(p, 0.5));
        assert_eq!(r.len(), 1);
        let (_, score) = r.iter().next().unwrap();
        assert!((score - 0.9).abs() < 1e-12);
    }

    #[test]
    fn union_merges() {
        let mut a = MatchResult::new();
        a.insert(MatchPair::new(eref(0, 1), eref(0, 2)), 0.9);
        let mut b = MatchResult::new();
        b.insert(MatchPair::new(eref(0, 1), eref(0, 2)), 0.95);
        b.insert(MatchPair::new(eref(0, 3), eref(0, 4)), 0.85);
        a.union(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn quality_metrics() {
        let gold = GoldStandard::from_pairs([
            MatchPair::new(eref(0, 1), eref(0, 2)),
            MatchPair::new(eref(0, 3), eref(0, 4)),
            MatchPair::new(eref(0, 5), eref(0, 6)),
        ]);
        let mut result = MatchResult::new();
        result.insert(MatchPair::new(eref(0, 1), eref(0, 2)), 0.9); // tp
        result.insert(MatchPair::new(eref(0, 3), eref(0, 4)), 0.9); // tp
        result.insert(MatchPair::new(eref(0, 7), eref(0, 8)), 0.9); // fp
        let q = QualityReport::evaluate(&result, &gold);
        assert_eq!(q.true_positives, 2);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, 1);
        assert!((q.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_quality_cases() {
        let empty_result = MatchResult::new();
        let empty_gold = GoldStandard::default();
        let q = QualityReport::evaluate(&empty_result, &empty_gold);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
    }
}
