//! Pair-enumeration arithmetic (paper Section V and Appendix I).
//!
//! PairRange assigns every comparison pair a global index. Within one
//! block the enumeration is *column-wise* over the strict upper
//! triangle of the `N×N` comparison matrix (one-source case) or over
//! all cells of the `|Φ_R| × |Φ_S|` rectangle (two-source case). Blocks
//! are laid out consecutively via per-block offsets.
//!
//! All arithmetic is `u64`; a dataset with 1.4 M entities in one block
//! would already produce ~10¹² pairs, far beyond `u32`.

/// Number of comparisons within a block of `n` entities: `n(n−1)/2`.
pub fn triangle_pairs(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

/// Number of comparisons between blocks of `n_r` and `n_s` entities.
pub fn rect_pairs(n_r: u64, n_s: u64) -> u64 {
    n_r * n_s
}

/// Cell index of pair `(x, y)` (`x < y`) in the column-wise enumeration
/// of the strict upper triangle of an `n×n` matrix:
///
/// `c(x, y, N) = x·(2N − x − 3)/2 + y − 1`
///
/// Column 0 holds indexes `0..N−2` for pairs `(0,1)..(0,N−1)`, column 1
/// continues from there, and so on — matching the paper's Figure 6.
pub fn triangle_cell_index(x: u64, y: u64, n: u64) -> u64 {
    debug_assert!(x < y, "triangle cells require x < y (got {x}, {y})");
    debug_assert!(y < n, "y={y} out of block of size {n}");
    // x·(2n−x−3) is always even: if x is odd, 2n−x−3 is even.
    x * (2 * n - x - 3) / 2 + y - 1
}

/// Inverse of [`triangle_cell_index`]: maps a cell index back to its
/// `(x, y)` pair. `O(log n)` via binary search on the column start
/// offsets. Used by tests (bijectivity) and the analytic workload
/// model (range boundary pairs).
pub fn triangle_cell_from_index(index: u64, n: u64) -> (u64, u64) {
    debug_assert!(index < triangle_pairs(n), "index {index} out of range");
    // Column x starts at c(x, x+1, n); find the largest x with
    // start(x) <= index.
    let start = |x: u64| triangle_cell_index(x, x + 1, n);
    let mut lo = 0u64;
    let mut hi = n - 2;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if start(mid) <= index {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let x = lo;
    let y = x + 1 + (index - start(x));
    (x, y)
}

/// Cell index of the pair `(x, y)` in the two-source enumeration of a
/// `|Φ_R| × |Φ_S|` rectangle: `c(x, y, N_S) = x·N_S + y` where `x`
/// indexes `R`-entities and `y` indexes `S`-entities (Appendix I).
pub fn rect_cell_index(x: u64, y: u64, n_s: u64) -> u64 {
    debug_assert!(y < n_s, "y={y} out of S-side of size {n_s}");
    x * n_s + y
}

/// Inverse of [`rect_cell_index`].
pub fn rect_cell_from_index(index: u64, n_s: u64) -> (u64, u64) {
    debug_assert!(n_s > 0);
    (index / n_s, index % n_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_pairs(0), 0);
        assert_eq!(triangle_pairs(1), 0);
        assert_eq!(triangle_pairs(2), 1);
        assert_eq!(triangle_pairs(5), 10);
        assert_eq!(triangle_pairs(100), 4950);
    }

    #[test]
    fn paper_figure6_examples() {
        // "the index for pair (2,3) of block Φ0 equals 5" — Φ0 has 4
        // entities in the running example.
        assert_eq!(triangle_cell_index(2, 3, 4), 5);
        // Entity M (index 2) in block Φ3 of size 5: pmin = c(0,2) = 1,
        // pairs (1,2)=4, (2,3)=7, (2,4)=8 relative to the block.
        assert_eq!(triangle_cell_index(0, 2, 5), 1);
        assert_eq!(triangle_cell_index(1, 2, 5), 4);
        assert_eq!(triangle_cell_index(2, 3, 5), 7);
        assert_eq!(triangle_cell_index(2, 4, 5), 8);
    }

    #[test]
    fn column_zero_is_the_first_run() {
        let n = 6;
        for y in 1..n {
            assert_eq!(triangle_cell_index(0, y, n), y - 1);
        }
    }

    #[test]
    fn enumeration_is_a_bijection_small_n() {
        for n in 2..=12u64 {
            let mut seen = vec![false; triangle_pairs(n) as usize];
            for x in 0..n {
                for y in (x + 1)..n {
                    let idx = triangle_cell_index(x, y, n) as usize;
                    assert!(!seen[idx], "index {idx} hit twice (n={n})");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "gaps in enumeration for n={n}");
        }
    }

    #[test]
    fn inverse_round_trips_small_n() {
        for n in 2..=12u64 {
            for idx in 0..triangle_pairs(n) {
                let (x, y) = triangle_cell_from_index(idx, n);
                assert!(x < y && y < n);
                assert_eq!(triangle_cell_index(x, y, n), idx);
            }
        }
    }

    #[test]
    fn rect_enumeration_covers_all_cells() {
        let (nr, ns) = (3u64, 4u64);
        let mut seen = vec![false; (nr * ns) as usize];
        for x in 0..nr {
            for y in 0..ns {
                let idx = rect_cell_index(x, y, ns) as usize;
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn monotone_in_both_coordinates() {
        // The PairRange reducer's early `break` depends on pair indexes
        // growing with the buffer coordinate for a fixed stream entity.
        let n = 9;
        for y in 1..n {
            for x in 1..y {
                assert!(
                    triangle_cell_index(x, y, n) > triangle_cell_index(x - 1, y, n),
                    "not monotone in x at ({x},{y})"
                );
            }
        }
        for x in 0..n - 1 {
            for y in (x + 2)..n {
                assert!(triangle_cell_index(x, y, n) > triangle_cell_index(x, y - 1, n));
            }
        }
    }

    proptest! {
        #[test]
        fn round_trip_random(n in 2u64..2000, seed in 0u64..1_000_000) {
            let total = triangle_pairs(n);
            let idx = seed % total;
            let (x, y) = triangle_cell_from_index(idx, n);
            prop_assert!(x < y && y < n);
            prop_assert_eq!(triangle_cell_index(x, y, n), idx);
        }

        #[test]
        fn rect_round_trip(ns in 1u64..5000, x in 0u64..3000, y_seed in 0u64..5000) {
            let y = y_seed % ns;
            let idx = rect_cell_index(x, y, ns);
            prop_assert_eq!(rect_cell_from_index(idx, ns), (x, y));
        }
    }
}
