//! Soundex phonetic blocking — the record-linkage classic, and a
//! natural second pass for multi-pass blocking: sound-alike names land
//! in one block even when prefix blocking separates them ("Smith" vs
//! "Smyth").

use super::{BlockKey, BlockingFunction};
use crate::entity::Entity;

/// American Soundex code of the first word of an attribute.
#[derive(Debug, Clone)]
pub struct SoundexBlocking {
    attribute: String,
}

impl SoundexBlocking {
    /// Blocks on the Soundex code of `attribute`'s first word.
    pub fn new(attribute: impl Into<String>) -> Self {
        Self {
            attribute: attribute.into(),
        }
    }
}

/// Computes the 4-character American Soundex code (letter + 3 digits)
/// of `word`, or `None` if it contains no ASCII letter.
pub fn soundex(word: &str) -> Option<String> {
    let letters: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let &first = letters.first()?;
    let digit = |c: char| -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => b'1',
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => b'2',
            'D' | 'T' => b'3',
            'L' => b'4',
            'M' | 'N' => b'5',
            'R' => b'6',
            _ => 0, // vowels + H, W, Y
        }
    };
    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_digit = digit(first);
    for &c in &letters[1..] {
        let d = digit(c);
        // H and W are transparent: they do not reset the run of equal
        // codes; vowels do.
        if c == 'H' || c == 'W' {
            continue;
        }
        if d == 0 {
            last_digit = 0;
            continue;
        }
        if d != last_digit {
            code.push(d as char);
            if code.len() == 4 {
                break;
            }
        }
        last_digit = d;
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

impl BlockingFunction for SoundexBlocking {
    fn key(&self, entity: &Entity) -> Option<BlockKey> {
        let value = entity.get(&self.attribute)?;
        let first_word = value.split_whitespace().next()?;
        soundex(first_word).map(BlockKey::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn sound_alikes_share_a_block() {
        let b = SoundexBlocking::new("name");
        let smith = Entity::new(1, [("name", "Smith John")]);
        let smyth = Entity::new(2, [("name", "Smyth John")]);
        assert_eq!(b.key(&smith), b.key(&smyth));
    }

    #[test]
    fn short_words_pad_with_zeros() {
        assert_eq!(soundex("Lee").as_deref(), Some("L000"));
        assert_eq!(soundex("Au").as_deref(), Some("A000"));
    }

    #[test]
    fn non_alphabetic_input_has_no_code() {
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex(""), None);
        let b = SoundexBlocking::new("name");
        assert_eq!(b.key(&Entity::new(1, [("name", "42")])), None);
        assert_eq!(b.key(&Entity::new(2, [("other", "x")])), None);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("ROBERT"), soundex("robert"));
    }
}
