//! Blocking: partitioning entities into candidate blocks.
//!
//! Blocking restricts matching to entities sharing a *blocking key*
//! derived from attribute values (Baxter et al., 2003). The paper's
//! evaluation derives keys as the first three letters of the title; the
//! degree of key skew is exactly what the load-balancing strategies
//! must survive.

pub mod soundex;

use std::fmt;
use std::sync::Arc;

use crate::entity::Entity;

pub use soundex::{soundex, SoundexBlocking};

/// A blocking key. Cheap to clone (shared storage) because keys travel
/// inside every shuffled composite key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockKey(Arc<str>);

impl BlockKey {
    /// Creates a key from any string-ish value.
    pub fn new(s: impl AsRef<str>) -> Self {
        BlockKey(Arc::from(s.as_ref()))
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The constant key `⊥` used to form Cartesian products for
    /// entities without a valid blocking key (paper, Appendix I).
    pub fn bottom() -> Self {
        BlockKey::new("\u{22A5}")
    }
}

impl fmt::Display for BlockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for BlockKey {
    fn from(s: &str) -> Self {
        BlockKey::new(s)
    }
}

/// Derives blocking keys from entities.
///
/// `key` returns `None` when the entity has no valid blocking key (e.g.
/// a product without manufacturer); such entities are handled by the
/// Cartesian-product decomposition in `er-loadbalance::null_keys`.
pub trait BlockingFunction: Send + Sync {
    /// The (single-pass) blocking key of `entity`.
    fn key(&self, entity: &Entity) -> Option<BlockKey>;

    /// All blocking keys of `entity` — more than one for multi-pass
    /// blocking. The default is the single-pass key.
    fn keys(&self, entity: &Entity) -> Vec<BlockKey> {
        self.key(entity).into_iter().collect()
    }
}

/// Prefix blocking: the lower-cased first `len` characters of an
/// attribute — the paper's "first three letters of the product or
/// publication title".
#[derive(Debug, Clone)]
pub struct PrefixBlocking {
    attribute: String,
    len: usize,
}

impl PrefixBlocking {
    /// Blocks on the first `len` characters of `attribute`.
    pub fn new(attribute: impl Into<String>, len: usize) -> Self {
        Self {
            attribute: attribute.into(),
            len,
        }
    }

    /// The paper's default: first three letters of `title`.
    pub fn title3() -> Self {
        Self::new("title", 3)
    }
}

impl BlockingFunction for PrefixBlocking {
    fn key(&self, entity: &Entity) -> Option<BlockKey> {
        let value = entity.get(&self.attribute)?;
        let normalized: String = value
            .chars()
            .filter(|c| c.is_alphanumeric())
            .take(self.len)
            .flat_map(char::to_lowercase)
            .collect();
        if normalized.is_empty() {
            None
        } else {
            Some(BlockKey::new(normalized))
        }
    }
}

/// Blocks on the full (lower-cased) value of one attribute — e.g.
/// "partition products by manufacturer" from the paper's introduction.
#[derive(Debug, Clone)]
pub struct AttributeBlocking {
    attribute: String,
}

impl AttributeBlocking {
    /// Blocks on the full value of `attribute`.
    pub fn new(attribute: impl Into<String>) -> Self {
        Self {
            attribute: attribute.into(),
        }
    }
}

impl BlockingFunction for AttributeBlocking {
    fn key(&self, entity: &Entity) -> Option<BlockKey> {
        let v = entity.get(&self.attribute)?;
        let trimmed = v.trim();
        if trimmed.is_empty() {
            None
        } else {
            Some(BlockKey::new(trimmed.to_lowercase()))
        }
    }
}

/// Assigns every entity the same key — turning blocking-based matching
/// into the full Cartesian product. Used for the `⊥` sub-problems of
/// the null-key decomposition.
#[derive(Debug, Clone, Default)]
pub struct ConstantBlocking;

impl BlockingFunction for ConstantBlocking {
    fn key(&self, _entity: &Entity) -> Option<BlockKey> {
        Some(BlockKey::bottom())
    }
}

/// Multi-pass blocking: the union of keys from several pass functions
/// (the paper's future-work extension, §VIII). An entity belongs to
/// every block any pass assigns it; duplicate keys are removed so an
/// entity enters a block at most once.
pub struct MultiPassBlocking {
    passes: Vec<Arc<dyn BlockingFunction>>,
}

impl MultiPassBlocking {
    /// Combines the given passes.
    pub fn new(passes: Vec<Arc<dyn BlockingFunction>>) -> Self {
        Self { passes }
    }
}

impl BlockingFunction for MultiPassBlocking {
    /// The "primary" key of multi-pass blocking is the first pass's key.
    fn key(&self, entity: &Entity) -> Option<BlockKey> {
        self.passes.iter().find_map(|p| p.key(entity))
    }

    fn keys(&self, entity: &Entity) -> Vec<BlockKey> {
        let mut keys: Vec<BlockKey> = self.passes.iter().flat_map(|p| p.keys(entity)).collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product(title: &str) -> Entity {
        Entity::new(1, [("title", title)])
    }

    #[test]
    fn prefix_blocking_takes_first_letters_lowercased() {
        let b = PrefixBlocking::title3();
        assert_eq!(b.key(&product("Canon EOS")).unwrap().as_str(), "can");
        assert_eq!(b.key(&product("caNoN")).unwrap().as_str(), "can");
    }

    #[test]
    fn prefix_blocking_skips_non_alphanumeric() {
        let b = PrefixBlocking::title3();
        assert_eq!(b.key(&product("  A-B C")).unwrap().as_str(), "abc");
        assert_eq!(b.key(&product("№ 1a")).unwrap().as_str(), "1a");
    }

    #[test]
    fn prefix_blocking_of_short_values_uses_what_exists() {
        let b = PrefixBlocking::title3();
        assert_eq!(b.key(&product("ab")).unwrap().as_str(), "ab");
    }

    #[test]
    fn missing_or_empty_attribute_yields_no_key() {
        let b = PrefixBlocking::title3();
        assert_eq!(b.key(&Entity::new(1, [("brand", "x")])), None);
        assert_eq!(b.key(&product("---")), None);
        assert_eq!(b.key(&product("")), None);
    }

    #[test]
    fn attribute_blocking_uses_whole_value() {
        let b = AttributeBlocking::new("brand");
        let e = Entity::new(1, [("brand", " Canon ")]);
        assert_eq!(b.key(&e).unwrap().as_str(), "canon");
        assert_eq!(b.key(&Entity::new(2, [("brand", "  ")])), None);
    }

    #[test]
    fn constant_blocking_assigns_bottom_to_everything() {
        let b = ConstantBlocking;
        assert_eq!(b.key(&product("anything")).unwrap(), BlockKey::bottom());
        assert_eq!(
            b.key(&Entity::new(1, [("x", "y")])).unwrap(),
            BlockKey::bottom()
        );
    }

    #[test]
    fn multipass_unions_and_dedups_keys() {
        let mp = MultiPassBlocking::new(vec![
            Arc::new(PrefixBlocking::title3()),
            Arc::new(AttributeBlocking::new("brand")),
        ]);
        let e = Entity::new(1, [("title", "Canon EOS"), ("brand", "canon")]);
        let keys: Vec<String> = mp.keys(&e).iter().map(|k| k.as_str().to_string()).collect();
        assert_eq!(keys, vec!["can", "canon"]);

        // Identical keys from different passes collapse.
        let mp2 = MultiPassBlocking::new(vec![
            Arc::new(PrefixBlocking::title3()),
            Arc::new(PrefixBlocking::title3()),
        ]);
        assert_eq!(mp2.keys(&e).len(), 1);
    }

    #[test]
    fn block_key_ordering_is_lexicographic() {
        let mut ks = [BlockKey::new("z"), BlockKey::new("a"), BlockKey::new("m")];
        ks.sort();
        let s: Vec<&str> = ks.iter().map(BlockKey::as_str).collect();
        assert_eq!(s, vec!["a", "m", "z"]);
    }
}
