//! Arena-backed storage for prepared entities — the allocation-free
//! compare loop's backing store.
//!
//! [`crate::matcher::Matcher::prepare`] produces a heap
//! [`crate::matcher::PreparedEntity`]: one boxed [`Prepared`] per match
//! rule, each owning its own `Vec` (char buffer, hash set, token
//! list). That is fine for a handful of entities, but a reduce task
//! preparing a whole block allocates O(entities × rules) separate heap
//! objects, and the O(b²) pair loop then chases them through pointer
//! indirections.
//!
//! A [`PreparedArena`] instead packs every prepared value of one reduce
//! task into a few contiguous, type-segregated slabs:
//!
//! | slab | element | feeds |
//! |---|---|---|
//! | `chars` | `char` | edit-distance family (`Chars`) |
//! | `hashes` | `u64` | set-overlap family (`HashedSet`) |
//! | `counts` | `(u64, f64)` | cosine family (`HashedCounts`) |
//! | `nodes` | [`ArenaValue`] | token lists (`Tokens`), recursively |
//! | `slots` | `Option<ArenaValue>` | one per match rule per entity |
//!
//! [`PreparedArena::intern`] copies a temporarily heap-prepared entity
//! into the slabs once and returns a [`PreparedId`] — a [`Span`] into
//! `slots` plus the entity's reference. After interning, scoring a pair
//! reads slices straight out of the slabs through
//! [`crate::similarity::PreparedView`] borrows: **zero allocations per
//! comparison**, all warm-up cost confined to the first sighting of
//! each entity. The slabs only ever grow (amortized `Vec` doubling), so
//! a `PreparedId` stays valid until [`PreparedArena::clear`].
//!
//! Offsets are `u32` [`Span`]s rather than references: half the size of
//! a fat pointer, trivially `Copy`, and immune to the self-referential
//! borrow problems an owning-arena-with-references design would hit.

use crate::entity::EntityRef;
use crate::similarity::{Prepared, PreparedView, TokenListView};

/// A contiguous `u32` range into one arena slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: u32,
    len: u32,
}

impl Span {
    fn new(start: usize, len: usize) -> Self {
        let (Ok(start), Ok(len)) = (u32::try_from(start), u32::try_from(len)) else {
            panic!("arena slab exceeds the u32 address space");
        };
        Self { start, len }
    }

    pub(crate) fn range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }

    pub(crate) fn len(self) -> usize {
        self.len as usize
    }
}

/// One prepared value stored in arena form: the same four families as
/// [`Prepared`], but holding slab [`Span`]s instead of owned `Vec`s.
#[derive(Debug, Clone, Copy)]
pub enum ArenaValue {
    /// Span into the `chars` slab.
    Chars(Span),
    /// Span into the `hashes` slab (sorted, deduplicated).
    HashedSet(Span),
    /// Span into the `counts` slab plus the precomputed L2 norm.
    HashedCounts {
        /// Sorted `(hash, count)` pairs.
        counts: Span,
        /// `sqrt(Σ count²)`.
        norm: f64,
    },
    /// Span into the `nodes` slab — one [`ArenaValue`] per token.
    Tokens(Span),
}

/// Handle to one interned entity: a span over the rule slots plus the
/// `(source, id)` it was prepared from. `Copy`, valid until the owning
/// arena is cleared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedId {
    entity_ref: EntityRef,
    slots: Span,
}

impl PreparedId {
    /// The `(source, id)` of the entity this was interned from.
    pub fn entity_ref(self) -> EntityRef {
        self.entity_ref
    }
}

/// The bump-allocated slab store. One per reduce task (reducers clone
/// their prototype, and each clone owns its own arena); not shared
/// across threads.
#[derive(Debug, Clone, Default)]
pub struct PreparedArena {
    chars: Vec<char>,
    hashes: Vec<u64>,
    counts: Vec<(u64, f64)>,
    nodes: Vec<ArenaValue>,
    slots: Vec<Option<ArenaValue>>,
    interned: usize,
}

impl PreparedArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies one prepared entity (one `Option<Prepared>` per match
    /// rule) into the slabs, returning its handle. The temporary heap
    /// form can be dropped afterwards — the arena owns a full copy.
    pub fn intern(&mut self, entity_ref: EntityRef, values: &[Option<Prepared>]) -> PreparedId {
        let interned: Vec<Option<ArenaValue>> = values
            .iter()
            .map(|v| v.as_ref().map(|p| self.intern_value(p)))
            .collect();
        let start = self.slots.len();
        self.slots.extend(interned);
        self.interned += 1;
        PreparedId {
            entity_ref,
            slots: Span::new(start, values.len()),
        }
    }

    fn intern_value(&mut self, p: &Prepared) -> ArenaValue {
        match p {
            Prepared::Chars(c) => {
                let start = self.chars.len();
                self.chars.extend_from_slice(c);
                ArenaValue::Chars(Span::new(start, c.len()))
            }
            Prepared::HashedSet(h) => {
                let start = self.hashes.len();
                self.hashes.extend_from_slice(h);
                ArenaValue::HashedSet(Span::new(start, h.len()))
            }
            Prepared::HashedCounts { counts, norm } => {
                let start = self.counts.len();
                self.counts.extend_from_slice(counts);
                ArenaValue::HashedCounts {
                    counts: Span::new(start, counts.len()),
                    norm: *norm,
                }
            }
            Prepared::Tokens(tokens) => {
                // Children intern their leaf data first; the parent's
                // node span is contiguous because the child values are
                // buffered before being appended.
                let children: Vec<ArenaValue> =
                    tokens.iter().map(|t| self.intern_value(t)).collect();
                let start = self.nodes.len();
                self.nodes.extend(children);
                ArenaValue::Tokens(Span::new(start, tokens.len()))
            }
        }
    }

    /// The number of rule slots `id` was interned with — must equal the
    /// scoring matcher's rule count.
    pub fn rule_slots(&self, id: PreparedId) -> usize {
        id.slots.len()
    }

    /// A borrow of rule `rule`'s prepared value for `id`, or `None`
    /// when the entity lacked that rule's attribute.
    ///
    /// # Panics
    /// If `id` came from a different (or since-cleared) arena, or
    /// `rule` is out of range.
    pub fn value(&self, id: PreparedId, rule: usize) -> Option<PreparedView<'_>> {
        self.slots[id.slots.range()][rule].map(|v| self.view(v))
    }

    pub(crate) fn view(&self, value: ArenaValue) -> PreparedView<'_> {
        match value {
            ArenaValue::Chars(s) => PreparedView::Chars(&self.chars[s.range()]),
            ArenaValue::HashedSet(s) => PreparedView::HashedSet(&self.hashes[s.range()]),
            ArenaValue::HashedCounts { counts, norm } => PreparedView::HashedCounts {
                counts: &self.counts[counts.range()],
                norm,
            },
            ArenaValue::Tokens(s) => PreparedView::Tokens(TokenListView::Arena {
                arena: self,
                nodes: s,
            }),
        }
    }

    pub(crate) fn token_view(&self, nodes: Span, index: usize) -> PreparedView<'_> {
        self.view(self.nodes[nodes.range()][index])
    }

    /// Entities interned so far.
    pub fn len(&self) -> usize {
        self.interned
    }

    /// True before anything was interned.
    pub fn is_empty(&self) -> bool {
        self.interned == 0
    }

    /// Total slab elements resident (chars + hashes + counts + nodes +
    /// slots) — a cheap proxy for the arena's memory footprint.
    pub fn slab_len(&self) -> usize {
        self.chars.len()
            + self.hashes.len()
            + self.counts.len()
            + self.nodes.len()
            + self.slots.len()
    }

    /// Drops every interned entity. **Invalidates all outstanding
    /// [`PreparedId`]s** — using one afterwards panics (span out of
    /// range) or reads another entity's data; callers must drop their
    /// handles along with the clear. Slab capacity is retained, so an
    /// arena reused across inputs stays allocation-free.
    pub fn clear(&mut self) {
        self.chars.clear();
        self.hashes.clear();
        self.counts.clear();
        self.nodes.clear();
        self.slots.clear();
        self.interned = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{CosineTokens, Jaccard, MongeElkan, NormalizedLevenshtein, Similarity};
    use crate::Entity;

    fn intern_one(arena: &mut PreparedArena, m: &dyn Similarity, s: &str) -> PreparedId {
        let e = Entity::new(7, [("t", s)]);
        let prepared = vec![Some(m.prepare(s))];
        arena.intern(e.entity_ref(), &prepared)
    }

    #[test]
    fn interned_views_score_bit_exact_with_heap_forms() {
        let measures: Vec<Box<dyn Similarity>> = vec![
            Box::new(NormalizedLevenshtein),
            Box::new(Jaccard),
            Box::new(CosineTokens),
            Box::new(MongeElkan::default()),
        ];
        for m in &measures {
            let mut arena = PreparedArena::new();
            let (a, b) = ("canon eos 5d kit", "canon eos 7d kit");
            let (ia, ib) = (
                intern_one(&mut arena, m.as_ref(), a),
                intern_one(&mut arena, m.as_ref(), b),
            );
            let (va, vb) = (
                arena.value(ia, 0).expect("attribute present"),
                arena.value(ib, 0).expect("attribute present"),
            );
            let via_arena = m.sim_view(&va, &vb);
            let via_heap = m.sim_prepared(&m.prepare(a), &m.prepare(b));
            assert_eq!(
                via_arena.to_bits(),
                via_heap.to_bits(),
                "{} diverged between arena and heap",
                m.name()
            );
        }
    }

    #[test]
    fn missing_rule_values_stay_missing() {
        let mut arena = PreparedArena::new();
        let e = Entity::new(1, [("brand", "canon")]);
        let id = arena.intern(e.entity_ref(), &[None, Some(Prepared::Chars(vec!['x']))]);
        assert_eq!(arena.rule_slots(id), 2);
        assert!(arena.value(id, 0).is_none());
        assert!(arena.value(id, 1).is_some());
        assert_eq!(id.entity_ref(), e.entity_ref());
    }

    #[test]
    fn nested_token_lists_intern_recursively() {
        // MongeElkan over MongeElkan: tokens of tokens.
        let outer = MongeElkan::new(std::sync::Arc::new(MongeElkan::default()));
        let mut arena = PreparedArena::new();
        let (a, b) = ("alpha beta", "alpha gamma");
        let (ia, ib) = (
            intern_one(&mut arena, &outer, a),
            intern_one(&mut arena, &outer, b),
        );
        let (va, vb) = (arena.value(ia, 0).unwrap(), arena.value(ib, 0).unwrap());
        assert_eq!(
            outer.sim_view(&va, &vb).to_bits(),
            outer.sim(a, b).to_bits()
        );
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut arena = PreparedArena::new();
        let _ = intern_one(&mut arena, &NormalizedLevenshtein, "abcdef");
        assert_eq!(arena.len(), 1);
        assert!(!arena.is_empty());
        assert!(arena.slab_len() > 0);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.slab_len(), 0);
    }
}
