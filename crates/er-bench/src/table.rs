//! Plain-text table rendering for bench reports.

/// A simple fixed-column text table with right-aligned cells.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the cell count mismatches the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a millisecond duration compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 60_000.0 {
        format!("{:.1}min", ms / 60_000.0)
    } else if ms >= 1_000.0 {
        format!("{:.1}s", ms / 1_000.0)
    } else {
        format!("{ms:.0}ms")
    }
}

/// Formats a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_ms(500.0), "500ms");
        assert_eq!(fmt_ms(2_500.0), "2.5s");
        assert_eq!(fmt_ms(120_000.0), "2.0min");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
    }
}
