//! Shared experiment plumbing.

use cluster_sim::{simulate_jobs, ClusterConfig, CostModel, SimJob, SimOutcome};
use er_core::blocking::BlockKey;
use er_loadbalance::analysis::analyze;
use er_loadbalance::bdm::BlockDistributionMatrix;
use er_loadbalance::pair_range::ranges::RangePolicy;
use er_loadbalance::StrategyKind;

/// Seed used by all figure benches — results are fully reproducible.
pub const PAPER_SEED: u64 = 2012;

/// Splits a blocking-key sequence into `m` contiguous partitions and
/// builds the BDM — the analytic equivalent of running Algorithm 3.
pub fn bdm_from_keys(keys: &[BlockKey], m: usize) -> BlockDistributionMatrix {
    assert!(m > 0);
    let len = keys.len();
    let base = len / m;
    let extra = len % m;
    let mut partitions: Vec<Vec<BlockKey>> = Vec::with_capacity(m);
    let mut offset = 0;
    for i in 0..m {
        let take = base + usize::from(i < extra);
        partitions.push(keys[offset..offset + take].to_vec());
        offset += take;
    }
    BlockDistributionMatrix::from_key_partitions(&partitions)
}

/// A lexicographically sorted copy of a key sequence — the paper's
/// Figure 11 adversarial input ("sorted by title" groups each block's
/// entities contiguously, confining blocks to few partitions).
pub fn sorted_keys(keys: &[BlockKey]) -> Vec<BlockKey> {
    let mut sorted = keys.to_vec();
    sorted.sort();
    sorted
}

/// Cost model shared by one bench run (calibrate once, reuse).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentCost {
    /// The calibrated model.
    pub model: CostModel,
}

impl ExperimentCost {
    /// Calibrates the pair cost on this machine.
    pub fn calibrated() -> Self {
        Self {
            model: CostModel::calibrated(),
        }
    }
}

/// Simulates one full ER run (BDM job for the balanced strategies +
/// matching job) on an `n`-node paper cluster; returns total seconds.
pub fn simulate_strategy(
    bdm: &BlockDistributionMatrix,
    strategy: StrategyKind,
    nodes: usize,
    r: usize,
    cost: &ExperimentCost,
) -> SimOutcome {
    let m = bdm.num_partitions();
    let entities: u64 = (0..bdm.num_blocks()).map(|k| bdm.size(k)).sum();
    let workload = analyze(bdm, strategy, r, RangePolicy::CeilDiv);
    let reduce_tasks: Vec<(u64, u64)> = workload
        .reduce_input_records
        .iter()
        .zip(&workload.reduce_comparisons)
        .map(|(&kv, &c)| (kv, c))
        .collect();
    let matching = SimJob::matching(
        strategy.to_string(),
        &cost.model,
        m,
        entities,
        workload.map_output_records,
        &reduce_tasks,
    );
    let cluster = ClusterConfig::paper(nodes);
    match strategy {
        StrategyKind::Basic => simulate_jobs(&[matching], &cluster, &cost.model),
        _ => {
            let bdm_job = SimJob::bdm(&cost.model, m, r, entities);
            simulate_jobs(&[bdm_job, matching], &cluster, &cost.model)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::skew::exponential_block_sizes;
    use er_datagen::vocab::block_prefix;

    fn keys(n: usize, b: usize, s: f64) -> Vec<BlockKey> {
        let sizes = exponential_block_sizes(n, b, s);
        let mut keys = Vec::with_capacity(n);
        for (k, &size) in sizes.iter().enumerate() {
            let key = BlockKey::new(block_prefix(k));
            keys.extend(std::iter::repeat_with(|| key.clone()).take(size));
        }
        // Deterministic interleave so blocks span partitions.
        let mut out = Vec::with_capacity(n);
        let stride = 17usize;
        for start in 0..stride {
            let mut i = start;
            while i < keys.len() {
                out.push(keys[i].clone());
                i += stride;
            }
        }
        out
    }

    #[test]
    fn bdm_from_keys_counts_everything() {
        let ks = keys(1000, 10, 0.5);
        let bdm = bdm_from_keys(&ks, 4);
        let total: u64 = (0..bdm.num_blocks()).map(|k| bdm.size(k)).sum();
        assert_eq!(total, 1000);
        assert_eq!(bdm.num_partitions(), 4);
    }

    #[test]
    fn skewed_basic_is_slower_than_balanced_strategies() {
        let ks = keys(20_000, 100, 1.0);
        let bdm = bdm_from_keys(&ks, 20);
        let cost = ExperimentCost {
            model: CostModel::default(),
        };
        let basic = simulate_strategy(&bdm, StrategyKind::Basic, 10, 100, &cost);
        let bs = simulate_strategy(&bdm, StrategyKind::BlockSplit, 10, 100, &cost);
        let pr = simulate_strategy(&bdm, StrategyKind::PairRange, 10, 100, &cost);
        assert!(
            basic.total_ms > bs.total_ms && basic.total_ms > pr.total_ms,
            "basic {:.0} bs {:.0} pr {:.0}",
            basic.total_ms,
            bs.total_ms,
            pr.total_ms
        );
    }

    #[test]
    fn sorted_keys_confine_blocks_to_few_partitions() {
        let ks = keys(1000, 10, 0.5);
        let sorted = sorted_keys(&ks);
        let bdm = bdm_from_keys(&sorted, 8);
        // The largest block occupies ceil(size / partition_size)
        // contiguous partitions, far fewer than all 8.
        let k0 = (0..bdm.num_blocks()).max_by_key(|&k| bdm.size(k)).unwrap();
        let occupied = (0..8).filter(|&p| bdm.size_in(k0, p) > 0).count();
        let shuffled_bdm = bdm_from_keys(&ks, 8);
        let occupied_shuffled = (0..8).filter(|&p| shuffled_bdm.size_in(k0, p) > 0).count();
        assert!(occupied <= occupied_shuffled);
        assert_eq!(occupied_shuffled, 8, "interleaved keys span all partitions");
    }
}
