//! Machine-readable bench exports: `BENCH_<name>.json`.
//!
//! The criterion shim prints human-readable numbers to stdout only, so
//! cross-PR performance trajectories used to require scraping logs.
//! This module gives every bench target a structured export instead:
//! a tiny JSON value type with a writer and a strict parser (both
//! dependency-free — the build container has no crates.io access), and
//! [`write_bench_json`], which drops `BENCH_<name>.json` into
//! [`bench_json_dir`]. CI smoke-runs the engine micro-bench and
//! re-parses its export with [`Json::parse`], so the format cannot rot
//! silently.
//!
//! The value type itself now lives in [`mr_engine::json`] so the
//! engine's JSONL trace sink can use it without depending on this
//! crate; everything is re-exported here, so existing callers keep
//! compiling unchanged. The path-anchored export helpers stay local —
//! they are bench-harness policy, not engine machinery.

use std::path::{Path, PathBuf};

pub use mr_engine::json::{Json, MAX_PARSE_DEPTH};

/// Environment variable overriding the export directory.
pub const JSON_DIR_ENV: &str = "ER_BENCH_JSON_DIR";

/// Directory bench exports land in: `$ER_BENCH_JSON_DIR`, defaulting
/// to `<workspace>/target/bench-json`. The default is anchored on this
/// crate's manifest dir (not the cwd) because cargo runs bench
/// binaries from the package root, which would scatter exports across
/// per-crate `target/` dirs.
pub fn bench_json_dir() -> PathBuf {
    match std::env::var_os(JSON_DIR_ENV) {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("target")
            .join("bench-json"),
    }
}

/// Writes `BENCH_<name>.json` into [`bench_json_dir`] (creating it)
/// and returns the full path. A one-line confirmation goes to stdout
/// so bench logs point at their machine-readable twin.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    write_bench_json_in(&bench_json_dir(), name, value)
}

/// [`write_bench_json`] with an explicit target directory — for
/// callers (and tests) that must not depend on the process-global
/// `ER_BENCH_JSON_DIR` environment.
pub fn write_bench_json_in(dir: &Path, name: &str, value: &Json) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{value}\n"))?;
    println!("bench json: wrote {}", path.display());
    Ok(path)
}

/// Median of a sample set (upper median for even sizes — matches the
/// criterion shim's report).
pub fn median_ms(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    sorted[sorted.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_json_type_roundtrips() {
        // The value machinery lives in mr-engine now; this guards the
        // re-export surface er-bench callers compile against.
        let value = Json::obj([("bench", Json::str("unit")), ("wall_ms", Json::Num(1.5))]);
        assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn median_is_the_upper_middle_sample() {
        assert_eq!(median_ms(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_ms(&[4.0, 1.0, 2.0, 3.0]), 3.0);
        assert_eq!(median_ms(&[7.5]), 7.5);
    }

    #[test]
    fn bench_json_lands_in_the_requested_dir() {
        // Uses the explicit-dir entry point rather than mutating the
        // process-global ER_BENCH_JSON_DIR (tests run multi-threaded).
        let dir = std::env::temp_dir().join(format!("er-bench-json-test-{}", std::process::id()));
        let path =
            write_bench_json_in(&dir, "unit_test", &Json::obj([("ok", Json::Bool(true))])).unwrap();
        assert_eq!(path, dir.join("BENCH_unit_test.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_bench_json_dir_is_workspace_target() {
        // Read-only check of the default mapping; the env override
        // branch is a one-line match exercised by CI via the real
        // export + validator pair.
        if std::env::var_os(JSON_DIR_ENV).is_none() {
            let dir = bench_json_dir();
            assert!(dir.ends_with("target/bench-json"), "got {}", dir.display());
        }
    }
}
