//! Named numeric series with shape checks used by the figure benches.

use crate::json::Json;

/// A labelled series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Label (e.g. "BlockSplit").
    pub name: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// y value at the first x.
    pub fn first_y(&self) -> f64 {
        self.points.first().map(|&(_, y)| y).unwrap_or(f64::NAN)
    }

    /// y value at the last x.
    pub fn last_y(&self) -> f64 {
        self.points.last().map(|&(_, y)| y).unwrap_or(f64::NAN)
    }

    /// Maximum y.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::NAN, f64::max)
    }

    /// Minimum y.
    pub fn min_y(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::NAN, f64::min)
    }

    /// Speedup series relative to the y at the first point
    /// (`speedup(x) = y(first) / y(x)`), the paper's Figures 13/14.
    pub fn speedup(&self) -> Series {
        let base = self.first_y();
        Series {
            name: format!("{} speedup", self.name),
            points: self
                .points
                .iter()
                .map(|&(x, y)| (x, if y > 0.0 { base / y } else { f64::NAN }))
                .collect(),
        }
    }

    /// Serializes the series for a `BENCH_<name>.json` export:
    /// `{"strategy": <name>, "points": [{<axis_key>: x, <value_key>: y}, …]}`.
    /// Shared by every figure bench so the export shape cannot drift
    /// between targets.
    pub fn to_json(&self, axis_key: &str, value_key: &str) -> Json {
        Json::obj([
            ("strategy", Json::str(self.name.clone())),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|&(x, y)| {
                            Json::obj([(axis_key, Json::Num(x)), (value_key, Json::Num(y))])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Is the series non-increasing within a tolerance factor?
    pub fn roughly_decreasing(&self, slack: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 * (1.0 + slack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(f64, f64)]) -> Series {
        Series {
            name: "t".into(),
            points: points.to_vec(),
        }
    }

    #[test]
    fn speedup_is_relative_to_first_point() {
        let s = series(&[(1.0, 100.0), (2.0, 50.0), (4.0, 25.0)]);
        let sp = s.speedup();
        assert_eq!(sp.points[0].1, 1.0);
        assert_eq!(sp.points[1].1, 2.0);
        assert_eq!(sp.points[2].1, 4.0);
    }

    #[test]
    fn extremes() {
        let s = series(&[(1.0, 5.0), (2.0, 9.0), (3.0, 2.0)]);
        assert_eq!(s.max_y(), 9.0);
        assert_eq!(s.min_y(), 2.0);
        assert_eq!(s.first_y(), 5.0);
        assert_eq!(s.last_y(), 2.0);
    }

    #[test]
    fn to_json_names_axis_and_value_keys() {
        let s = series(&[(20.0, 100.0), (40.0, 50.0)]);
        let json = s.to_json("r", "total_ms");
        assert_eq!(json.get("strategy").and_then(Json::as_str), Some("t"));
        let points = json.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("r").and_then(Json::as_f64), Some(40.0));
        assert_eq!(points[1].get("total_ms").and_then(Json::as_f64), Some(50.0));
    }

    #[test]
    fn monotonicity_with_slack() {
        let s = series(&[(1.0, 100.0), (2.0, 60.0), (3.0, 62.0), (4.0, 40.0)]);
        assert!(s.roughly_decreasing(0.05));
        assert!(!s.roughly_decreasing(0.0));
    }
}
