//! # er-bench — the experiment harness
//!
//! One bench target per table/figure of the paper's evaluation (see
//! `DESIGN.md` for the full index). Targets print the same rows or
//! series the paper reports; `EXPERIMENTS.md` records paper-vs-measured
//! for each.
//!
//! Methodology: workloads are *exactly* reproduced (comparison counts
//! per reduce task, emitted key-value pairs) via
//! `er_loadbalance::analysis`, then turned into wall-clock estimates
//! by `cluster-sim`'s calibrated cost model on a virtual n-node
//! cluster. Small configurations additionally run for real through
//! `mr-engine` (the test suite asserts analysis == execution).

pub mod json;
pub mod series;
pub mod setup;
pub mod table;

pub use json::{bench_json_dir, median_ms, write_bench_json, Json};
pub use series::Series;
pub use setup::{bdm_from_keys, simulate_strategy, sorted_keys, ExperimentCost, PAPER_SEED};
pub use table::TextTable;
