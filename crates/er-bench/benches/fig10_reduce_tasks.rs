//! Figure 10 — execution times vs the number of reduce tasks (DS1).
//!
//! Fixed cluster of n = 10 nodes, m = 20 map tasks, r from 20 to 160
//! (paper §VI-B). Expected shape: Basic stays high (bounded below by
//! its largest block, ~70 % of all pairs) with collision peaks;
//! BlockSplit and PairRange improve by ~6× at r = 160; PairRange edges
//! ahead at large r (paper: 7 %).

use er_bench::table::{fmt_ms, TextTable};
use er_bench::{bdm_from_keys, simulate_strategy, ExperimentCost, Series, PAPER_SEED};
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::StrategyKind;

const NODES: usize = 10;
const M: usize = 20;

fn main() {
    println!("== Figure 10: execution times for DS1 vs number of reduce tasks ==");
    println!("   (n = {NODES}, m = {M}, r = 20..160)\n");
    let cost = ExperimentCost::calibrated();
    let keys = key_sequence(&ds1_spec(PAPER_SEED));
    let bdm_cache: Vec<_> = vec![bdm_from_keys(&keys, M)];
    let bdm = &bdm_cache[0];
    println!(
        "   DS1-like: {} entities, {} blocks, {} pairs\n",
        keys.len(),
        bdm.num_blocks(),
        bdm.total_pairs()
    );

    let strategies = [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ];
    let mut table = TextTable::new(&["r", "Basic", "BlockSplit", "PairRange"]);
    let mut series: Vec<Series> = strategies
        .iter()
        .map(|s| Series::new(s.to_string()))
        .collect();
    for r in (20..=160).step_by(20) {
        let mut cells = vec![r.to_string()];
        for (i, &strategy) in strategies.iter().enumerate() {
            let outcome = simulate_strategy(bdm, strategy, NODES, r, &cost);
            series[i].push(r as f64, outcome.total_ms);
            cells.push(fmt_ms(outcome.total_ms));
        }
        table.row(cells);
    }
    table.print();

    let basic = &series[0];
    let bs = &series[1];
    let pr = &series[2];
    let factor = basic.last_y() / bs.last_y().min(pr.last_y());
    println!(
        "\n[{}] At r=160 the balanced strategies are {:.1}x faster than Basic (paper: ~6x)",
        if factor > 3.0 { "PASS" } else { "WARN" },
        factor
    );
    println!(
        "[{}] Basic never leaves the largest-block lower bound (min {:.0}s vs balanced {:.0}s)",
        if basic.min_y() > 2.0 * bs.min_y() {
            "PASS"
        } else {
            "WARN"
        },
        basic.min_y() / 1e3,
        bs.min_y() / 1e3
    );
    println!(
        "[{}] BlockSplit is stable across r (max/min = {:.2})",
        if bs.max_y() / bs.min_y() < 2.0 {
            "PASS"
        } else {
            "WARN"
        },
        bs.max_y() / bs.min_y()
    );
    println!(
        "[{}] PairRange benefits from more reduce tasks (r=160 is {:.2}x faster than r=20)",
        if pr.first_y() / pr.last_y() > 1.0 {
            "PASS"
        } else {
            "WARN"
        },
        pr.first_y() / pr.last_y()
    );
}
