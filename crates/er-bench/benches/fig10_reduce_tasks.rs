//! Figure 10 — execution times vs the number of reduce tasks (DS1).
//!
//! Fixed cluster of n = 10 nodes, m = 20 map tasks, r from 20 to 160
//! (paper §VI-B). Expected shape: Basic stays high (bounded below by
//! its largest block, ~70 % of all pairs) with collision peaks;
//! BlockSplit and PairRange improve by ~6× at r = 160; PairRange edges
//! ahead at large r (paper: 7 %).

use std::sync::Arc;

use er_bench::table::{fmt_ms, TextTable};
use er_bench::{
    bdm_from_keys, simulate_strategy, write_bench_json, ExperimentCost, Json, Series, PAPER_SEED,
};
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::driver::{run_er, ErConfig};
use er_loadbalance::StrategyKind;

const NODES: usize = 10;
const M: usize = 20;

/// Laptop-scale engine sweep over `r`, reporting the streaming reduce
/// path's memory gauges for the same figure axis — the simulator
/// models time, these numbers show what the real engine buffers.
/// Returns one JSON record per (strategy, r).
fn engine_memory_sweep() -> Vec<Json> {
    let ds = er_datagen::generate_products(&ds1_spec(PAPER_SEED).scaled(0.005));
    let input: Vec<Vec<((), er_loadbalance::Ent)>> = mr_engine::input::partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        8,
    );
    let mut records = Vec::new();
    let mut table = TextTable::new(&[
        "strategy",
        "r",
        "input recs",
        "peak group",
        "peak resident",
        "resident/input",
    ]);
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        for r in [8usize, 16, 32] {
            let config = ErConfig::new(strategy)
                .with_reduce_tasks(r)
                .with_parallelism(4)
                .with_count_only(true);
            let outcome = run_er(input.clone(), &config).unwrap();
            let m = &outcome.match_metrics;
            let input_records: u64 = m.reduce_tasks.iter().map(|t| t.records_in).sum();
            let fraction = m.peak_resident_fraction();
            table.row(vec![
                strategy.to_string(),
                r.to_string(),
                input_records.to_string(),
                m.peak_group_len().to_string(),
                m.peak_resident_records().to_string(),
                format!("{fraction:.3}"),
            ]);
            records.push(Json::obj([
                ("strategy", Json::str(strategy.to_string())),
                ("reduce_tasks", Json::Num(r as f64)),
                ("reduce_input_records", Json::Num(input_records as f64)),
                ("peak_group_len", Json::Num(m.peak_group_len() as f64)),
                (
                    "peak_resident_records",
                    Json::Num(m.peak_resident_records() as f64),
                ),
                ("peak_resident_fraction", Json::Num(fraction)),
            ]));
        }
    }
    table.print();
    records
}

fn main() {
    println!("== Figure 10: execution times for DS1 vs number of reduce tasks ==");
    println!("   (n = {NODES}, m = {M}, r = 20..160)\n");
    let cost = ExperimentCost::calibrated();
    let keys = key_sequence(&ds1_spec(PAPER_SEED));
    let bdm_cache: Vec<_> = vec![bdm_from_keys(&keys, M)];
    let bdm = &bdm_cache[0];
    println!(
        "   DS1-like: {} entities, {} blocks, {} pairs\n",
        keys.len(),
        bdm.num_blocks(),
        bdm.total_pairs()
    );

    let strategies = [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ];
    let mut table = TextTable::new(&["r", "Basic", "BlockSplit", "PairRange"]);
    let mut series: Vec<Series> = strategies
        .iter()
        .map(|s| Series::new(s.to_string()))
        .collect();
    for r in (20..=160).step_by(20) {
        let mut cells = vec![r.to_string()];
        for (i, &strategy) in strategies.iter().enumerate() {
            let outcome = simulate_strategy(bdm, strategy, NODES, r, &cost);
            series[i].push(r as f64, outcome.total_ms);
            cells.push(fmt_ms(outcome.total_ms));
        }
        table.row(cells);
    }
    table.print();

    let basic = &series[0];
    let bs = &series[1];
    let pr = &series[2];
    let factor = basic.last_y() / bs.last_y().min(pr.last_y());
    println!(
        "\n[{}] At r=160 the balanced strategies are {:.1}x faster than Basic (paper: ~6x)",
        if factor > 3.0 { "PASS" } else { "WARN" },
        factor
    );
    println!(
        "[{}] Basic never leaves the largest-block lower bound (min {:.0}s vs balanced {:.0}s)",
        if basic.min_y() > 2.0 * bs.min_y() {
            "PASS"
        } else {
            "WARN"
        },
        basic.min_y() / 1e3,
        bs.min_y() / 1e3
    );
    println!(
        "[{}] BlockSplit is stable across r (max/min = {:.2})",
        if bs.max_y() / bs.min_y() < 2.0 {
            "PASS"
        } else {
            "WARN"
        },
        bs.max_y() / bs.min_y()
    );
    println!(
        "[{}] PairRange benefits from more reduce tasks (r=160 is {:.2}x faster than r=20)",
        if pr.first_y() / pr.last_y() > 1.0 {
            "PASS"
        } else {
            "WARN"
        },
        pr.first_y() / pr.last_y()
    );

    println!("\n-- engine check: streaming reduce memory vs r (DS1 0.5%, real run) --\n");
    let engine_memory = engine_memory_sweep();

    let sim_series: Vec<Json> = series.iter().map(|s| s.to_json("r", "total_ms")).collect();
    let json = Json::obj([
        ("bench", Json::str("fig10_reduce_tasks")),
        ("nodes", Json::Num(NODES as f64)),
        ("map_tasks", Json::Num(M as f64)),
        ("simulated_ms", Json::Arr(sim_series)),
        ("engine_memory", Json::Arr(engine_memory)),
    ]);
    write_bench_json("fig10_reduce_tasks", &json).expect("bench json export");
}
