//! Sorted Neighborhood window sweep — the er-sn companion figure.
//!
//! Three experiments, all real engine runs on a DS1-shaped corpus:
//!
//! 1. **Window sweep** (w ∈ {2, 4, 8, 16}, fixed r): JobSN vs RepSN
//!    wall time, comparisons and gold recall — the classic SN
//!    recall-vs-cost trade-off, plus the strategy trade-off (stitch
//!    job vs replication overhead) at every point. Both strategies
//!    must produce the identical pair set.
//! 2. **Partition sweep** (r ∈ {2, 4, 8}, fixed w): replication
//!    overhead (map output / input) for RepSN vs JobSN's extra-job
//!    overhead; the pair set must not depend on r.
//! 3. **Skew comparison** (cf. *Data Partitioning for Parallel Entity
//!    Matching*): on a heavily skewed block distribution, SN's
//!    comparison count stays ~n·(w−1) with a near-flat per-range load,
//!    while blocking-based BlockSplit must still evaluate every
//!    skew-inflated block pair — balanced, but orders of magnitude
//!    more work.
//! 4. **Multi-pass sweep** (1 vs 2 passes, second pass on the
//!    reversed-title key): single-pass recall plateaus because
//!    prefix-divergent duplicates never collate; the reversed pass
//!    recovers suffix-equal pairs while the pair-level dedup gate
//!    keeps every unioned window pair at exactly one comparison —
//!    measuring the recall-per-comparison price of the extra pass.
//!
//! Exports `BENCH_fig_sn_window.json` (validated in CI by
//! `validate_bench_json`).

use std::sync::Arc;
use std::time::Instant;

use er_bench::table::{fmt_count, fmt_ms, TextTable};
use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use er_core::sortkey::{AttributeSortKey, ReversedSortKey, SortKeyFunction};
use er_core::QualityReport;
use er_datagen::{ds1_spec, exponential_dataset, generate_products};
use er_loadbalance::driver::{run_er, ErConfig};
use er_loadbalance::{Ent, StrategyKind, WorkloadStats};
use er_sn::{
    multipass_oracle_comparisons, run_multipass_sn, run_sorted_neighborhood, SnConfig, SnStrategy,
};
use mr_engine::input::{partition_evenly, Partitions};

const MAP_TASKS: usize = 4;
const SAMPLES: usize = 3;

fn corpus() -> (Partitions<(), Ent>, er_core::GoldStandard, usize) {
    let ds = generate_products(&ds1_spec(PAPER_SEED).scaled(0.02));
    let n = ds.len();
    let gold = ds.gold.clone();
    let input = partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        MAP_TASKS,
    );
    (input, gold, n)
}

fn run_once(
    input: &Partitions<(), Ent>,
    strategy: SnStrategy,
    window: usize,
    partitions: usize,
) -> (er_sn::SnOutcome, f64) {
    let config = SnConfig::new(strategy)
        .with_window(window)
        .with_partitions(partitions)
        .with_sample_rate(0.1);
    let mut walls = Vec::with_capacity(SAMPLES);
    let mut outcome = None;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let run = run_sorted_neighborhood(input.clone(), &config).expect("SN run");
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        outcome = Some(run);
    }
    (outcome.expect("at least one sample"), median_ms(&walls))
}

fn main() {
    println!("== fig_sn_window: Sorted Neighborhood window/partition sweeps (real runs) ==");
    let (input, gold, n) = corpus();
    println!("   corpus: {n} DS1-shaped products, m = {MAP_TASKS} map tasks\n");

    // ---- 1. window sweep ------------------------------------------------
    const R: usize = 4;
    println!("-- window sweep (r = {R}) --\n");
    let mut table = TextTable::new(&[
        "w",
        "pairs",
        "JobSN ms",
        "RepSN ms",
        "RepSN replicas",
        "recall",
    ]);
    let mut window_records = Vec::new();
    for window in [2usize, 4, 8, 16] {
        let (jobsn, jobsn_ms) = run_once(&input, SnStrategy::JobSn, window, R);
        let (repsn, repsn_ms) = run_once(&input, SnStrategy::RepSn, window, R);
        assert_eq!(
            jobsn.result.pair_set(),
            repsn.result.pair_set(),
            "strategies diverged at w = {window}"
        );
        assert_eq!(jobsn.total_comparisons(), repsn.total_comparisons());
        let quality = QualityReport::evaluate(&jobsn.result, &gold);
        table.row(vec![
            window.to_string(),
            fmt_count(jobsn.total_comparisons()),
            fmt_ms(jobsn_ms),
            fmt_ms(repsn_ms),
            fmt_count(repsn.replicas()),
            format!("{:.3}", quality.recall()),
        ]);
        window_records.push(Json::obj([
            ("window", Json::Num(window as f64)),
            ("comparisons", Json::Num(jobsn.total_comparisons() as f64)),
            ("jobsn_wall_ms", Json::Num(jobsn_ms)),
            ("repsn_wall_ms", Json::Num(repsn_ms)),
            ("repsn_replicas", Json::Num(repsn.replicas() as f64)),
            ("recall", Json::Num(quality.recall())),
            ("precision", Json::Num(quality.precision())),
        ]));
    }
    table.print();

    // ---- 2. partition sweep --------------------------------------------
    const W: usize = 4;
    println!("\n-- partition sweep (w = {W}) --\n");
    let mut table = TextTable::new(&[
        "r",
        "JobSN ms",
        "RepSN ms",
        "RepSN map out/in",
        "stitch candidates",
        "load imbalance",
    ]);
    let mut partition_records = Vec::new();
    let mut reference_pairs = None;
    for partitions in [2usize, 4, 8] {
        let (jobsn, jobsn_ms) = run_once(&input, SnStrategy::JobSn, W, partitions);
        let (repsn, repsn_ms) = run_once(&input, SnStrategy::RepSn, W, partitions);
        assert_eq!(jobsn.result.pair_set(), repsn.result.pair_set());
        match &reference_pairs {
            None => reference_pairs = Some(jobsn.result.pair_set()),
            Some(r) => assert_eq!(
                r,
                &jobsn.result.pair_set(),
                "pair set must not depend on the partition count"
            ),
        }
        let rep_factor = repsn.match_metrics.map_output_records() as f64
            / repsn.match_metrics.map_input_records() as f64;
        let stitch_candidates = jobsn
            .stitch_metrics
            .as_ref()
            .map(|m| m.map_input_records())
            .unwrap_or(0);
        let balance = jobsn
            .match_metrics
            .reduce_imbalance(er_loadbalance::COMPARISONS);
        table.row(vec![
            partitions.to_string(),
            fmt_ms(jobsn_ms),
            fmt_ms(repsn_ms),
            format!("{rep_factor:.3}"),
            fmt_count(stitch_candidates),
            format!("{balance:.2}"),
        ]);
        partition_records.push(Json::obj([
            ("partitions", Json::Num(partitions as f64)),
            ("jobsn_wall_ms", Json::Num(jobsn_ms)),
            ("repsn_wall_ms", Json::Num(repsn_ms)),
            ("repsn_replication_factor", Json::Num(rep_factor)),
            (
                "jobsn_stitch_candidates",
                Json::Num(stitch_candidates as f64),
            ),
            ("load_imbalance", Json::Num(balance)),
        ]));
    }
    table.print();

    // ---- 3. SN vs BlockSplit under skew --------------------------------
    println!("\n-- skew comparison: SN vs BlockSplit (s = 1.0 exponential blocks) --\n");
    let skewed = exponential_dataset(8_000, 40, 1.0, PAPER_SEED);
    let skew_input: Partitions<(), Ent> = partition_evenly(
        skewed
            .entities
            .iter()
            .map(|e| ((), Arc::new(e.clone())))
            .collect(),
        MAP_TASKS,
    );
    const SKEW_R: usize = 8;
    let sn_cfg = SnConfig::new(SnStrategy::JobSn)
        .with_window(W)
        .with_partitions(SKEW_R)
        .with_sample_rate(0.1);
    let sn = run_sorted_neighborhood(skew_input.clone(), &sn_cfg).expect("SN skew run");
    let bs_cfg = ErConfig::new(StrategyKind::BlockSplit)
        .with_reduce_tasks(SKEW_R)
        .with_count_only(true);
    let bs = run_er(skew_input, &bs_cfg).expect("BlockSplit skew run");
    let bs_stats = WorkloadStats::from_metrics(StrategyKind::BlockSplit, &bs.match_metrics);
    let sn_total = sn.total_comparisons();
    let bs_total = bs_stats.total_comparisons();
    let sn_imb = sn
        .match_metrics
        .reduce_imbalance(er_loadbalance::COMPARISONS);
    let mut table = TextTable::new(&["strategy", "comparisons", "imbalance"]);
    table.row(vec![
        "SN (JobSN)".into(),
        fmt_count(sn_total),
        format!("{sn_imb:.2}"),
    ]);
    table.row(vec![
        "BlockSplit".into(),
        fmt_count(bs_total),
        format!("{:.2}", bs_stats.imbalance()),
    ]);
    table.print();
    let ratio = bs_total as f64 / sn_total as f64;
    println!(
        "\n[{}] SN's candidate set is skew-independent: BlockSplit evaluates {ratio:.1}x more pairs \
         on the skewed corpus (both balanced across reduce tasks)",
        if ratio > 5.0 { "PASS" } else { "WARN" }
    );
    println!(
        "[{}] SN per-range load stays near-flat under skew (imbalance {sn_imb:.2})",
        if sn_imb < 2.0 { "PASS" } else { "WARN" }
    );

    // ---- 4. multi-pass sweep -------------------------------------------
    const MP_WINDOW: usize = 16;
    println!("\n-- multi-pass sweep (w = {MP_WINDOW}, r = {R}; pass 2 = reversed title) --\n");
    let all_passes: Vec<Arc<dyn SortKeyFunction>> = vec![
        Arc::new(AttributeSortKey::title()),
        Arc::new(ReversedSortKey::title()),
    ];
    let mut table = TextTable::new(&[
        "passes",
        "comparisons",
        "gated",
        "wall ms",
        "recall",
        "precision",
    ]);
    let mut multipass_records = Vec::new();
    let mut recalls = Vec::new();
    for pass_count in 1..=all_passes.len() {
        let passes = &all_passes[..pass_count];
        let config = SnConfig::new(SnStrategy::JobSn)
            .with_window(MP_WINDOW)
            .with_partitions(R)
            .with_sample_rate(0.1);
        let mut walls = Vec::with_capacity(SAMPLES);
        let mut outcome = None;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            let run = run_multipass_sn(input.clone(), &config, passes).expect("multi-pass run");
            walls.push(start.elapsed().as_secs_f64() * 1e3);
            outcome = Some(run);
        }
        let outcome = outcome.expect("at least one sample");
        let wall = median_ms(&walls);
        assert_eq!(
            outcome.total_comparisons(),
            multipass_oracle_comparisons(&input, &config, passes),
            "each unioned window pair must be compared exactly once"
        );
        let quality = QualityReport::evaluate(&outcome.result, &gold);
        table.row(vec![
            pass_count.to_string(),
            fmt_count(outcome.total_comparisons()),
            fmt_count(outcome.total_skipped()),
            fmt_ms(wall),
            format!("{:.3}", quality.recall()),
            format!("{:.3}", quality.precision()),
        ]);
        multipass_records.push(Json::obj([
            ("passes", Json::Num(pass_count as f64)),
            ("window", Json::Num(MP_WINDOW as f64)),
            ("comparisons", Json::Num(outcome.total_comparisons() as f64)),
            ("gated_pairs", Json::Num(outcome.total_skipped() as f64)),
            ("wall_ms", Json::Num(wall)),
            ("recall", Json::Num(quality.recall())),
            ("precision", Json::Num(quality.precision())),
            ("matches", Json::Num(outcome.result.len() as f64)),
        ]));
        recalls.push(quality.recall());
    }
    table.print();
    println!(
        "\n[{}] the reversed-title pass lifts recall {:.3} -> {:.3} past the single-pass plateau",
        if recalls.last() > recalls.first() {
            "PASS"
        } else {
            "WARN"
        },
        recalls.first().copied().unwrap_or(0.0),
        recalls.last().copied().unwrap_or(0.0)
    );

    let json = Json::obj([
        ("bench", Json::str("fig_sn_window")),
        ("entities", Json::Num(n as f64)),
        ("map_tasks", Json::Num(MAP_TASKS as f64)),
        ("window_sweep", Json::Arr(window_records)),
        ("partition_sweep", Json::Arr(partition_records)),
        ("multipass_sweep", Json::Arr(multipass_records)),
        (
            "skew",
            Json::obj([
                ("entities", Json::Num(skewed.len() as f64)),
                ("sn_comparisons", Json::Num(sn_total as f64)),
                ("blocksplit_comparisons", Json::Num(bs_total as f64)),
                ("sn_imbalance", Json::Num(sn_imb)),
                ("blocksplit_imbalance", Json::Num(bs_stats.imbalance())),
                ("comparison_ratio", Json::Num(ratio)),
            ]),
        ),
    ]);
    write_bench_json("fig_sn_window", &json).expect("bench json export");
}
