//! Criterion micro-benchmarks for the MapReduce engine and the ER
//! pipeline at laptop scale: BDM job, full BlockSplit/PairRange runs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use er_bench::PAPER_SEED;
use er_core::blocking::PrefixBlocking;
use er_loadbalance::driver::{run_er, ErConfig};
use er_loadbalance::StrategyKind;
use mr_engine::input::partition_evenly;

fn pipeline_input(scale: f64) -> Vec<Vec<((), er_loadbalance::Ent)>> {
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(scale));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        8,
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let input = pipeline_input(0.005);
    let mut g = c.benchmark_group("er_pipeline_ds1_0.5pct");
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_blocking(Arc::new(PrefixBlocking::title3()))
            .with_reduce_tasks(16)
            .with_parallelism(4);
        g.bench_function(strategy.to_string(), |b| {
            b.iter_batched(
                || input.clone(),
                |input| run_er(input, &config).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Not a timing benchmark: prints where the shuffle cost lives. With
/// map-side sorted runs and reduce-side merging, the coordinator's
/// shuffle share must be a sliver of job wall time — the merge is
/// absorbed into reduce-task wall time on the worker pool.
fn report_shuffle_location(_c: &mut Criterion) {
    use er_core::Matcher;
    use er_loadbalance::basic::basic_job;
    use er_loadbalance::compare::PairComparer;

    let input = pipeline_input(0.02);
    let job = basic_job(
        Arc::new(PrefixBlocking::title3()),
        PairComparer::new(Arc::new(Matcher::paper_default())),
        16,
        4,
    );
    let out = job.run(input).unwrap();
    let m = &out.metrics;
    let reduce_wall: std::time::Duration = m.reduce_tasks.iter().map(|t| t.wall).sum();
    println!(
        "shuffle location: coordinator {:?} ({:.2}% of job wall {:?}); \
         reduce tasks absorb the merge ({:?} summed reduce wall)",
        m.shuffle_wall,
        100.0 * m.shuffle_wall.as_secs_f64() / m.wall.as_secs_f64().max(1e-9),
        m.wall,
        reduce_wall,
    );
    assert!(
        m.shuffle_wall.as_secs_f64() < 0.25 * m.wall.as_secs_f64(),
        "coordinator-side shuffle must be a transpose, not a sort"
    );
}

fn bench_bdm_job(c: &mut Criterion) {
    let input = pipeline_input(0.02);
    c.bench_function("bdm_job_ds1_2pct", |b| {
        b.iter_batched(
            || input.clone(),
            |input| {
                er_loadbalance::bdm_job::compute_bdm(
                    input,
                    Arc::new(PrefixBlocking::title3()),
                    16,
                    4,
                    true,
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline, bench_bdm_job, report_shuffle_location
}
criterion_main!(benches);
