//! Criterion micro-benchmarks for the MapReduce engine and the ER
//! pipeline at laptop scale: BDM job, full BlockSplit/PairRange runs,
//! and the streaming-reduce memory report.
//!
//! Besides the stdout report, this target writes
//! `BENCH_micro_engine.json` (median wall + the reduce-memory gauges)
//! via [`er_bench::write_bench_json`] so cross-PR perf trajectories
//! are machine-readable; CI smoke-runs the bench with `--test` and
//! re-parses the export.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use er_core::blocking::PrefixBlocking;
use er_loadbalance::driver::{run_er, ErConfig};
use er_loadbalance::StrategyKind;
use mr_engine::input::partition_evenly;

fn pipeline_input(scale: f64) -> Vec<Vec<((), er_loadbalance::Ent)>> {
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(scale));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        8,
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let input = pipeline_input(0.005);
    let mut g = c.benchmark_group("er_pipeline_ds1_0.5pct");
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_blocking(Arc::new(PrefixBlocking::title3()))
            .with_reduce_tasks(16)
            .with_parallelism(4);
        g.bench_function(strategy.to_string(), |b| {
            b.iter_batched(
                || input.clone(),
                |input| run_er(input, &config).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Not a timing benchmark: prints where the shuffle cost lives. With
/// map-side sorted runs and reduce-side merging, the coordinator's
/// shuffle share must be a sliver of job wall time — the merge is
/// absorbed into reduce-task wall time on the worker pool.
fn report_shuffle_location(_c: &mut Criterion) {
    use er_core::Matcher;
    use er_loadbalance::basic::basic_job;
    use er_loadbalance::compare::PairComparer;

    let input = pipeline_input(0.02);
    let job = basic_job(
        Arc::new(PrefixBlocking::title3()),
        PairComparer::new(Arc::new(Matcher::paper_default())),
        16,
        4,
    );
    let out = job.run(input).unwrap();
    let m = &out.metrics;
    let reduce_wall: std::time::Duration = m.reduce_tasks.iter().map(|t| t.wall).sum();
    println!(
        "shuffle location: coordinator {:?} ({:.2}% of job wall {:?}); \
         reduce tasks absorb the merge ({:?} summed reduce wall)",
        m.shuffle_wall,
        100.0 * m.shuffle_wall.as_secs_f64() / m.wall.as_secs_f64().max(1e-9),
        m.wall,
        reduce_wall,
    );
    assert!(
        m.shuffle_wall.as_secs_f64() < 0.25 * m.wall.as_secs_f64(),
        "coordinator-side shuffle must be a transpose, not a sort"
    );
}

/// Not a timing benchmark: measures the streaming reduce path's
/// memory gauges on the DS1-scale engine micro-bench and exports them
/// (plus a median wall) as `BENCH_micro_engine.json`.
///
/// The pre-streaming engine materialized each reduce task's merged
/// run, pinning peak resident records at ≈1.0× task input; the
/// streaming path buffers one group + `m` run heads, and this report
/// *asserts* the job-level ratio stays below 0.6× — the tentpole's
/// acceptance bound — instead of trusting the design.
fn report_reduce_memory(c: &mut Criterion) {
    use er_core::Matcher;
    use er_loadbalance::basic::basic_job;
    use er_loadbalance::compare::PairComparer;

    let (scale, reps) = if c.is_test_mode() {
        (0.005, 1)
    } else {
        (0.02, 5)
    };
    let input = pipeline_input(scale);
    let job = basic_job(
        Arc::new(PrefixBlocking::title3()),
        PairComparer::new(Arc::new(Matcher::paper_default())),
        16,
        4,
    );
    let mut walls_ms = Vec::with_capacity(reps);
    let mut shuffle_walls_ms = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let run = job.run(input.clone()).unwrap();
        walls_ms.push(run.metrics.wall.as_secs_f64() * 1e3);
        shuffle_walls_ms.push(run.metrics.shuffle_wall.as_secs_f64() * 1e3);
        out = Some(run);
    }
    let out = out.expect("at least one rep");
    // Record counts and peak gauges are deterministic (identical every
    // rep — the test suite asserts this), so the last rep's metrics
    // serve; wall times are noisy and exported as medians across reps.
    let m = &out.metrics;
    let reduce_input: u64 = m.reduce_tasks.iter().map(|t| t.records_in).sum();
    let fraction = m.peak_resident_fraction();
    println!(
        "reduce memory (scale {scale}): {} input records over {} tasks; \
         peak group {} records, peak resident {} records, \
         resident/input = {fraction:.3} (materialized path: ~1.0)",
        reduce_input,
        m.reduce_tasks.len(),
        m.peak_group_len(),
        m.peak_resident_records(),
    );
    assert!(
        fraction < 0.6,
        "streaming reduce must stay below 0.6x of task input records, got {fraction:.3}"
    );

    let json = Json::obj([
        ("bench", Json::str("micro_engine")),
        ("job", Json::str("basic_ds1")),
        ("scale", Json::Num(scale)),
        ("samples", Json::Num(walls_ms.len() as f64)),
        ("median_wall_ms", Json::Num(median_ms(&walls_ms))),
        ("shuffle_wall_ms", Json::Num(median_ms(&shuffle_walls_ms))),
        ("reduce_input_records", Json::Num(reduce_input as f64)),
        ("peak_group_len", Json::Num(m.peak_group_len() as f64)),
        (
            "peak_resident_records",
            Json::Num(m.peak_resident_records() as f64),
        ),
        ("peak_resident_fraction", Json::Num(fraction)),
    ]);
    write_bench_json("micro_engine", &json).expect("bench json export");
}

fn bench_bdm_job(c: &mut Criterion) {
    let input = pipeline_input(0.02);
    c.bench_function("bdm_job_ds1_2pct", |b| {
        b.iter_batched(
            || input.clone(),
            |input| {
                er_loadbalance::bdm_job::compute_bdm(
                    input,
                    Arc::new(PrefixBlocking::title3()),
                    16,
                    4,
                    true,
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline, bench_bdm_job, report_shuffle_location, report_reduce_memory
}
criterion_main!(benches);
