//! Criterion micro-benchmarks for the MapReduce engine and the ER
//! pipeline at laptop scale: BDM job, full BlockSplit/PairRange runs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use er_bench::PAPER_SEED;
use er_core::blocking::PrefixBlocking;
use er_loadbalance::driver::{run_er, ErConfig};
use er_loadbalance::StrategyKind;
use mr_engine::input::partition_evenly;

fn pipeline_input(scale: f64) -> Vec<Vec<((), er_loadbalance::Ent)>> {
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(scale));
    partition_evenly(
        ds.entities
            .into_iter()
            .map(|e| ((), Arc::new(e)))
            .collect(),
        8,
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let input = pipeline_input(0.005);
    let mut g = c.benchmark_group("er_pipeline_ds1_0.5pct");
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_blocking(Arc::new(PrefixBlocking::title3()))
            .with_reduce_tasks(16)
            .with_parallelism(4);
        g.bench_function(strategy.to_string(), |b| {
            b.iter_batched(
                || input.clone(),
                |input| run_er(input, &config).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_bdm_job(c: &mut Criterion) {
    let input = pipeline_input(0.02);
    c.bench_function("bdm_job_ds1_2pct", |b| {
        b.iter_batched(
            || input.clone(),
            |input| {
                er_loadbalance::bdm_job::compute_bdm(
                    input,
                    Arc::new(PrefixBlocking::title3()),
                    16,
                    4,
                    true,
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline, bench_bdm_job
}
criterion_main!(benches);
