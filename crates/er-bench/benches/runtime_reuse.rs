//! Worker-pool reuse — the per-run cost of the unified `Runtime` path
//! vs the legacy transient-thread path.
//!
//! The same ER workload (DS1-shaped corpus, BlockSplit) runs N times
//! back to back two ways:
//!
//! * **transient** — `run_er`, which spawns scoped worker threads for
//!   every job phase of every run (the pre-`Runtime` behavior);
//! * **pooled** — `run_er_in` on a `Workflow` bound to one persistent
//!   `WorkerPool` spawned before the first run (what the facade
//!   crate's `Runtime` + `Resolver` execute).
//!
//! Outputs are asserted byte-identical; the report shows per-run walls
//! and the spawn bookkeeping (threads spawned once vs per run), and
//! `BENCH_runtime_reuse.json` records both series.

use std::sync::Arc;
use std::time::Instant;

use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use er_loadbalance::driver::{run_er, run_er_in, ErConfig};
use er_loadbalance::StrategyKind;
use mr_engine::input::partition_evenly;
use mr_engine::pool::WorkerPool;
use mr_engine::workflow::Workflow;

const RUNS: usize = 12;
const PARALLELISM: usize = 4;

fn main() {
    println!("== Runtime pool reuse: per-run wall, transient vs pooled ==\n");
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(0.005));
    let input = partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        8,
    );
    let config = ErConfig::new(StrategyKind::BlockSplit)
        .with_reduce_tasks(16)
        .with_parallelism(PARALLELISM);

    // Legacy path: every run spawns its own scoped threads per phase.
    let mut transient_ms = Vec::with_capacity(RUNS);
    let reference = run_er(input.clone(), &config).unwrap();
    for _ in 0..RUNS {
        let start = Instant::now();
        let outcome = run_er(input.clone(), &config).unwrap();
        transient_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(outcome.result.pair_set(), reference.result.pair_set());
    }

    // Unified path: one pool, spawned once, shared by all runs.
    let pool = Arc::new(WorkerPool::new(PARALLELISM));
    let mut pooled_ms = Vec::with_capacity(RUNS);
    for run in 0..RUNS {
        let start = Instant::now();
        let mut workflow = Workflow::on_pool(format!("run-{run}"), Arc::clone(&pool));
        let stages = run_er_in(&mut workflow, input.clone(), &config).unwrap();
        let metrics = workflow.finish();
        pooled_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            stages.result.pair_set(),
            reference.result.pair_set(),
            "pooled run {run} must be byte-identical to the transient path"
        );
        assert_eq!(metrics.num_stages(), 2);
    }
    assert_eq!(
        pool.threads_spawned(),
        PARALLELISM,
        "the pooled path spawns threads exactly once"
    );

    let t_med = median_ms(&transient_ms);
    let p_med = median_ms(&pooled_ms);
    println!("runs per mode:        {RUNS}  (m = 8, r = 16, parallelism = {PARALLELISM})");
    println!("transient median:     {t_med:.2} ms  (2 thread-scope spawns per run)");
    println!(
        "pooled median:        {p_med:.2} ms  ({} threads spawned once, {} pooled tasks total)",
        pool.threads_spawned(),
        pool.tasks_executed()
    );
    println!(
        "per-run delta:        {:+.2} ms ({:+.1}%)",
        p_med - t_med,
        (p_med - t_med) / t_med * 100.0
    );
    let verdict = if p_med <= t_med * 1.10 {
        "PASS pooled execution is at least spawn-cost-neutral"
    } else {
        "WARN pooled execution slower than transient — investigate"
    };
    println!("{verdict}");

    let json = Json::obj([
        ("bench", Json::str("runtime_reuse")),
        ("runs", Json::Num(RUNS as f64)),
        ("parallelism", Json::Num(PARALLELISM as f64)),
        (
            "transient_ms",
            Json::Arr(transient_ms.iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "pooled_ms",
            Json::Arr(pooled_ms.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("transient_median_ms", Json::Num(t_med)),
        ("pooled_median_ms", Json::Num(p_med)),
        (
            "threads_spawned_once",
            Json::Num(pool.threads_spawned() as f64),
        ),
        (
            "pooled_tasks_executed",
            Json::Num(pool.tasks_executed() as f64),
        ),
    ]);
    write_bench_json("runtime_reuse", &json).expect("bench json export");
}
