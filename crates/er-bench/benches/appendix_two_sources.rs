//! Appendix I — matching two sources (Figures 15–17) plus a scaled
//! two-source linkage run.
//!
//! Part 1 replays the appendix's worked example through the real
//! engine and checks every concrete number. Part 2 links two
//! generated product catalogs end-to-end with all three strategies
//! and reports workload balance.

use std::sync::Arc;

use er_bench::table::TextTable;
use er_bench::PAPER_SEED;
use er_core::SourceId;
use er_loadbalance::driver::ErConfig;
use er_loadbalance::two_source::{appendix_example, run_linkage};
use er_loadbalance::{StrategyKind, COMPARISONS};

fn example_section() {
    println!("-- Figures 15-17: the worked example (12 cross-source pairs, r = 3) --\n");
    let mut table = TextTable::new(&["strategy", "comparisons", "reduce loads", "map KV pairs"]);
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_blocking(er_loadbalance::running_example::blocking())
            .with_reduce_tasks(3)
            .with_parallelism(1)
            .with_count_only(true);
        let outcome = run_linkage(
            appendix_example::entity_partitions(),
            appendix_example::partition_sources(),
            &config,
        )
        .unwrap();
        let loads = outcome.match_metrics.per_reduce_counter(COMPARISONS);
        table.row(vec![
            strategy.to_string(),
            outcome.total_comparisons().to_string(),
            format!("{loads:?}"),
            outcome.match_metrics.map_output_records().to_string(),
        ]);
    }
    table.print();
    println!();
}

fn linkage_section() {
    println!("-- scaled two-source linkage: two product catalogs, 2% DS1 each --\n");
    // Two catalogs sharing the prefix space; catalog S gets a
    // different seed so titles differ, but injected duplicates within
    // each catalog do not cross sources — cross-source matches come
    // from codeword collisions being impossible, so expect ~0 matches
    // but a full workload (the interesting part is the balance).
    let r_ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(0.02));
    let s_ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED + 1).scaled(0.02));
    let mut partitions: Vec<Vec<((), er_loadbalance::Ent)>> = Vec::new();
    let mut sources = Vec::new();
    for chunk in r_ds.entities.chunks(r_ds.entities.len() / 2 + 1) {
        partitions.push(chunk.iter().map(|e| ((), Arc::new(e.clone()))).collect());
        sources.push(SourceId::R);
    }
    for chunk in s_ds.entities.chunks(s_ds.entities.len() / 2 + 1) {
        partitions.push(
            chunk
                .iter()
                .map(|e| {
                    (
                        (),
                        Arc::new(er_core::Entity::with_source(
                            SourceId::S,
                            e.id().0,
                            e.attributes(),
                        )),
                    )
                })
                .collect(),
        );
        sources.push(SourceId::S);
    }

    let mut table = TextTable::new(&["strategy", "comparisons", "max/mean load", "matches"]);
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_reduce_tasks(16)
            .with_parallelism(4);
        let outcome = run_linkage(partitions.clone(), sources.clone(), &config).unwrap();
        let imbalance = outcome.match_metrics.reduce_imbalance(COMPARISONS);
        table.row(vec![
            strategy.to_string(),
            outcome.total_comparisons().to_string(),
            format!("{imbalance:.2}"),
            outcome.result.len().to_string(),
        ]);
    }
    table.print();
}

fn main() {
    println!("== Appendix I: matching two sources ==\n");
    example_section();
    linkage_section();
    println!("\n[NOTE] expected: all strategies agree on 12 comparisons in the example;");
    println!("       BlockSplit loads [4,4,4] (paper Figure 16), PairRange loads [4,4,4]");
    println!("       (Figure 17); in the scaled run the balanced strategies show");
    println!("       max/mean close to 1.0 while Basic's reflects the dominant block.");
}
