//! Appendix I — matching two sources (Figures 15–17) plus scaled
//! two-source runs for both workload classes.
//!
//! Part 1 replays the appendix's worked example through the real
//! engine and checks every concrete number. Part 2 links two
//! generated product catalogs end-to-end with all three blocking
//! strategies and reports workload balance. Part 3 runs the same
//! catalogs through **two-source Sorted Neighborhood** (one
//! interleaved sort order, cross-source window pairs only) with both
//! boundary strategies, checked against the cross-source oracle —
//! SN's candidate set is `O(n·w)` regardless of the blocking-key skew
//! that drives the strategies of part 2.
//!
//! Exports `BENCH_appendix_two_sources.json` (validated in CI by
//! `validate_bench_json`).

use std::sync::Arc;
use std::time::Instant;

use er_bench::table::TextTable;
use er_bench::{write_bench_json, Json, PAPER_SEED};
use er_core::SourceId;
use er_loadbalance::driver::ErConfig;
use er_loadbalance::two_source::{appendix_example, run_linkage};
use er_loadbalance::{StrategyKind, COMPARISONS};
use er_sn::{
    run_two_source_sn, two_source_oracle_comparisons, two_source_sn_oracle, SnConfig, SnStrategy,
};

fn example_section(records: &mut Vec<(String, Json)>) {
    println!("-- Figures 15-17: the worked example (12 cross-source pairs, r = 3) --\n");
    let mut table = TextTable::new(&["strategy", "comparisons", "reduce loads", "map KV pairs"]);
    let mut rows = Vec::new();
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_blocking(er_loadbalance::running_example::blocking())
            .with_reduce_tasks(3)
            .with_parallelism(1)
            .with_count_only(true);
        let outcome = run_linkage(
            appendix_example::entity_partitions(),
            appendix_example::partition_sources(),
            &config,
        )
        .unwrap();
        let loads = outcome.match_metrics.per_reduce_counter(COMPARISONS);
        table.row(vec![
            strategy.to_string(),
            outcome.total_comparisons().to_string(),
            format!("{loads:?}"),
            outcome.match_metrics.map_output_records().to_string(),
        ]);
        rows.push(Json::obj([
            ("strategy", Json::str(strategy.to_string())),
            ("comparisons", Json::Num(outcome.total_comparisons() as f64)),
            (
                "reduce_loads",
                Json::Arr(loads.iter().map(|&l| Json::Num(l as f64)).collect()),
            ),
            (
                "map_output_records",
                Json::Num(outcome.match_metrics.map_output_records() as f64),
            ),
        ]));
    }
    table.print();
    println!();
    records.push(("example".into(), Json::Arr(rows)));
}

/// Two catalogs sharing the prefix space, one per source; catalog S
/// gets a different seed so titles differ — the interesting part is
/// the workload, not the (near-empty) cross match set.
fn catalogs() -> (Vec<Vec<((), er_loadbalance::Ent)>>, Vec<SourceId>) {
    let r_ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(0.02));
    let s_ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED + 1).scaled(0.02));
    let mut partitions: Vec<Vec<((), er_loadbalance::Ent)>> = Vec::new();
    let mut sources = Vec::new();
    for chunk in r_ds.entities.chunks(r_ds.entities.len() / 2 + 1) {
        partitions.push(chunk.iter().map(|e| ((), Arc::new(e.clone()))).collect());
        sources.push(SourceId::R);
    }
    for chunk in s_ds.entities.chunks(s_ds.entities.len() / 2 + 1) {
        partitions.push(
            chunk
                .iter()
                .map(|e| {
                    (
                        (),
                        Arc::new(er_core::Entity::with_source(
                            SourceId::S,
                            e.id().0,
                            e.attributes(),
                        )),
                    )
                })
                .collect(),
        );
        sources.push(SourceId::S);
    }
    (partitions, sources)
}

fn linkage_section(
    partitions: &[Vec<((), er_loadbalance::Ent)>],
    sources: &[SourceId],
    records: &mut Vec<(String, Json)>,
) {
    println!("-- scaled two-source linkage: two product catalogs, 2% DS1 each --\n");
    let mut table = TextTable::new(&["strategy", "comparisons", "max/mean load", "matches"]);
    let mut rows = Vec::new();
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_reduce_tasks(16)
            .with_parallelism(4);
        let start = Instant::now();
        let outcome = run_linkage(partitions.to_vec(), sources.to_vec(), &config).unwrap();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let imbalance = outcome.match_metrics.reduce_imbalance(COMPARISONS);
        table.row(vec![
            strategy.to_string(),
            outcome.total_comparisons().to_string(),
            format!("{imbalance:.2}"),
            outcome.result.len().to_string(),
        ]);
        rows.push(Json::obj([
            ("strategy", Json::str(strategy.to_string())),
            ("comparisons", Json::Num(outcome.total_comparisons() as f64)),
            ("load_imbalance", Json::Num(imbalance)),
            ("matches", Json::Num(outcome.result.len() as f64)),
            ("wall_ms", Json::Num(wall_ms)),
        ]));
    }
    table.print();
    records.push(("linkage".into(), Json::Arr(rows)));
}

fn sn_section(
    partitions: &[Vec<((), er_loadbalance::Ent)>],
    sources: &[SourceId],
    records: &mut Vec<(String, Json)>,
) {
    const WINDOW: usize = 4;
    const RANGES: usize = 8;
    println!("\n-- two-source Sorted Neighborhood (w = {WINDOW}, {RANGES} ranges) --\n");
    let mut table = TextTable::new(&[
        "strategy",
        "comparisons",
        "same-src gated",
        "matches",
        "wall ms",
    ]);
    let mut rows = Vec::new();
    // The oracle (and its comparison count) is strategy-independent:
    // compute it once against a base config and check both strategies
    // against the same set.
    let input = partitions.to_vec();
    let base_config = SnConfig::new(SnStrategy::JobSn)
        .with_window(WINDOW)
        .with_partitions(RANGES)
        .with_sample_rate(0.1)
        .with_parallelism(4);
    let oracle_pairs = two_source_sn_oracle(&input, &base_config).pair_set();
    let oracle_comparisons = two_source_oracle_comparisons(&input, &base_config);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let config = SnConfig {
            strategy,
            ..base_config.clone()
        };
        let start = Instant::now();
        let outcome = run_two_source_sn(input.clone(), sources.to_vec(), &config).unwrap();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            outcome.result.pair_set(),
            oracle_pairs,
            "{strategy} diverged from the cross-source oracle"
        );
        assert_eq!(
            outcome.total_comparisons(),
            oracle_comparisons,
            "{strategy}: each cross-source window pair exactly once"
        );
        let gated = outcome
            .workflow
            .counters
            .get(er_loadbalance::compare::SAME_SOURCE_SKIPPED);
        table.row(vec![
            strategy.to_string(),
            outcome.total_comparisons().to_string(),
            gated.to_string(),
            outcome.result.len().to_string(),
            format!("{wall_ms:.0}ms"),
        ]);
        rows.push(Json::obj([
            ("strategy", Json::str(strategy.to_string())),
            ("comparisons", Json::Num(outcome.total_comparisons() as f64)),
            ("same_source_gated", Json::Num(gated as f64)),
            ("matches", Json::Num(outcome.result.len() as f64)),
            ("wall_ms", Json::Num(wall_ms)),
        ]));
    }
    table.print();
    records.push(("sorted_neighborhood".into(), Json::Arr(rows)));
}

fn main() {
    println!("== Appendix I: matching two sources ==\n");
    let mut records: Vec<(String, Json)> = vec![
        ("bench".into(), Json::str("appendix_two_sources")),
        ("cross_source_pairs_example".into(), Json::Num(12.0)),
    ];
    example_section(&mut records);
    let (partitions, sources) = catalogs();
    let entities: usize = partitions.iter().map(Vec::len).sum();
    records.push(("entities".into(), Json::Num(entities as f64)));
    linkage_section(&partitions, &sources, &mut records);
    sn_section(&partitions, &sources, &mut records);
    println!("\n[NOTE] expected: all strategies agree on 12 comparisons in the example;");
    println!("       BlockSplit loads [4,4,4] (paper Figure 16), PairRange loads [4,4,4]");
    println!("       (Figure 17); in the scaled run the balanced strategies show");
    println!("       max/mean close to 1.0 while Basic's reflects the dominant block;");
    println!("       two-source SN evaluates only cross-source window pairs, identical");
    println!("       between JobSN and RepSN and equal to the interleaved-order oracle.");
    write_bench_json("appendix_two_sources", &Json::Obj(records)).expect("bench json export");
}
