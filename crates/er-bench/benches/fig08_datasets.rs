//! Figure 8 — the dataset table.
//!
//! Paper facts to reproduce: DS1 ≈ 114 000 product descriptions, DS2
//! ≈ 1.4 M publication records, blocking key = first 3 letters of the
//! title; DS1's largest block contributes >70 % of all pairs (§VI-B);
//! DS2's comparison volume is ~2 000× DS1's (§VI-C).
//!
//! Exports `BENCH_fig08_datasets.json` (validated in CI by
//! `validate_bench_json`).

use er_bench::table::{fmt_count, TextTable};
use er_bench::{write_bench_json, Json};
use er_core::blocking::PrefixBlocking;
use er_core::pairs::triangle_pairs;
use er_datagen::dataset::{block_sizes, BlockStats};
use er_datagen::{ds1_spec, ds2_spec, generate_products, generate_publications, DatasetSpec};

fn full_scale_row(name: &str, spec: &DatasetSpec) -> (u64, usize, u64, u64, Vec<String>, Json) {
    let sizes = block_sizes(spec);
    let entities: u64 = sizes.iter().map(|&s| s as u64).sum();
    let blocks = sizes.iter().filter(|&&s| s > 0).count();
    let pairs: u64 = sizes.iter().map(|&s| triangle_pairs(s as u64)).sum();
    let largest = sizes.iter().copied().max().unwrap_or(0) as u64;
    let largest_pairs = triangle_pairs(largest);
    let row = vec![
        name.to_string(),
        fmt_count(entities),
        fmt_count(blocks as u64),
        fmt_count(largest),
        format!("{:.1}%", 100.0 * largest as f64 / entities as f64),
        fmt_count(pairs),
        format!("{:.1}%", 100.0 * largest_pairs as f64 / pairs as f64),
    ];
    let json = Json::obj([
        ("dataset", Json::str(name)),
        ("entities", Json::Num(entities as f64)),
        ("blocks", Json::Num(blocks as f64)),
        ("largest_block", Json::Num(largest as f64)),
        ("pairs", Json::Num(pairs as f64)),
        (
            "largest_block_pair_share",
            Json::Num(largest_pairs as f64 / pairs as f64),
        ),
    ]);
    (entities, blocks, pairs, largest, row, json)
}

fn main() {
    println!("== Figure 8: datasets used for evaluation ==\n");
    let mut table = TextTable::new(&[
        "dataset",
        "entities",
        "blocks",
        "largest blk",
        "ent share",
        "pairs",
        "pair share",
    ]);
    let (_, _, p1, _, row1, json1) =
        full_scale_row("DS1-like (products)", &ds1_spec(er_bench::PAPER_SEED));
    let (_, _, p2, _, row2, json2) =
        full_scale_row("DS2-like (publications)", &ds2_spec(er_bench::PAPER_SEED));
    table.row(row1);
    table.row(row2);
    table.print();

    println!(
        "\nDS2/DS1 pair ratio: {:.0}x (paper: \"more than 2,000 times\")",
        p2 as f64 / p1 as f64
    );

    // Materialized (scaled) datasets: verify the generator reproduces
    // the same shares with real entities and gold standards.
    println!("\n-- materialized at bench scale (real entities + gold standard) --\n");
    let mut table = TextTable::new(&["dataset", "entities", "blocks", "pair share", "gold pairs"]);
    let mut materialized = Vec::new();
    for (name, ds) in [
        (
            "DS1-like @10%",
            generate_products(&ds1_spec(er_bench::PAPER_SEED).scaled(0.10)),
        ),
        (
            "DS2-like @1%",
            generate_publications(&ds2_spec(er_bench::PAPER_SEED).scaled(0.01)),
        ),
    ] {
        let stats = BlockStats::compute(&ds.entities, &PrefixBlocking::title3());
        table.row(vec![
            name.to_string(),
            fmt_count(stats.n_entities as u64),
            fmt_count(stats.n_blocks as u64),
            format!("{:.1}%", 100.0 * stats.largest_pair_share()),
            fmt_count(ds.gold.len() as u64),
        ]);
        materialized.push(Json::obj([
            ("dataset", Json::str(name)),
            ("entities", Json::Num(stats.n_entities as f64)),
            ("blocks", Json::Num(stats.n_blocks as f64)),
            (
                "largest_block_pair_share",
                Json::Num(stats.largest_pair_share()),
            ),
            ("gold_pairs", Json::Num(ds.gold.len() as f64)),
        ]));
    }
    table.print();

    let share1 = {
        let sizes = block_sizes(&ds1_spec(er_bench::PAPER_SEED));
        let pairs: u64 = sizes.iter().map(|&s| triangle_pairs(s as u64)).sum();
        triangle_pairs(sizes.iter().copied().max().unwrap() as u64) as f64 / pairs as f64
    };
    println!(
        "\n[{}] DS1 largest-block pair share {:.1}% (paper: >70%)",
        if share1 > 0.70 { "PASS" } else { "WARN" },
        100.0 * share1
    );
    let ratio = p2 as f64 / p1 as f64;
    println!(
        "[{}] DS2/DS1 pair ratio {:.0}x lies in the paper's ~2,000x regime",
        if (500.0..10_000.0).contains(&ratio) {
            "PASS"
        } else {
            "WARN"
        },
        ratio
    );

    let json = Json::obj([
        ("bench", Json::str("fig08_datasets")),
        ("ds2_ds1_pair_ratio", Json::Num(ratio)),
        ("full_scale", Json::Arr(vec![json1, json2])),
        ("materialized", Json::Arr(materialized)),
    ]);
    write_bench_json("fig08_datasets", &json).expect("bench json export");
}
