//! Figure 9 — robustness against data skew.
//!
//! Workload: b = 100 blocks, |Φ_k| ∝ e^(−s·k), s ∈ {0, 0.2, …, 1.0};
//! cluster n = 10, m = 20, r = 100 (paper §VI-A). Reported metric:
//! average execution time per 10⁴ pairs.
//!
//! Expected shape: Basic degrades steeply with s (≈12× slower than the
//! balanced strategies at s = 1); BlockSplit and PairRange stay flat;
//! at s = 0 Basic is fastest (no BDM job).

use er_bench::table::TextTable;
use er_bench::{
    bdm_from_keys, simulate_strategy, write_bench_json, ExperimentCost, Json, Series, PAPER_SEED,
};
use er_core::blocking::BlockKey;
use er_datagen::skew::exponential_block_sizes;
use er_datagen::vocab::block_prefix;
use er_loadbalance::StrategyKind;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const N_ENTITIES: usize = 114_000;
const BLOCKS: usize = 100;
const NODES: usize = 10;
const M: usize = 20;
const R: usize = 100;

fn skewed_keys(s: f64) -> Vec<BlockKey> {
    let sizes = exponential_block_sizes(N_ENTITIES, BLOCKS, s);
    let mut keys: Vec<BlockKey> = Vec::with_capacity(N_ENTITIES);
    for (k, &size) in sizes.iter().enumerate() {
        let key = BlockKey::new(block_prefix(k));
        keys.extend(std::iter::repeat_with(|| key.clone()).take(size));
    }
    let mut rng = rand::rngs::SmallRng::seed_from_u64(PAPER_SEED);
    keys.shuffle(&mut rng);
    keys
}

fn main() {
    println!("== Figure 9: execution time per 10^4 pairs vs data skew ==");
    println!("   (n = {NODES}, m = {M}, r = {R}, b = {BLOCKS}, |Φk| ∝ e^(-s·k))\n");
    let cost = ExperimentCost::calibrated();
    println!(
        "   calibrated pair comparison cost: {:.0} ns\n",
        cost.model.pair_ns
    );

    let strategies = [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ];
    let mut table = TextTable::new(&[
        "s",
        "pairs",
        "Basic ms/10^4",
        "BlockSplit ms/10^4",
        "PairRange ms/10^4",
    ]);
    let mut series: Vec<Series> = strategies
        .iter()
        .map(|s| Series::new(s.to_string()))
        .collect();
    for step in 0..=5 {
        let s = step as f64 * 0.2;
        let keys = skewed_keys(s);
        let bdm = bdm_from_keys(&keys, M);
        let pairs = bdm.total_pairs();
        let mut cells = vec![format!("{s:.1}"), format!("{pairs}")];
        for (i, &strategy) in strategies.iter().enumerate() {
            let outcome = simulate_strategy(&bdm, strategy, NODES, R, &cost);
            let per_1e4 = outcome.total_ms / (pairs as f64 / 1e4);
            series[i].push(s, per_1e4);
            cells.push(format!("{per_1e4:.2}"));
        }
        table.row(cells);
    }
    table.print();

    let basic = &series[0];
    let bs = &series[1];
    let pr = &series[2];
    let degradation = basic.last_y() / bs.last_y().min(pr.last_y());
    println!(
        "\n[{}] Basic at s=1 is {:.1}x slower per pair than the balanced strategies (paper: >12x)",
        if degradation > 5.0 { "PASS" } else { "WARN" },
        degradation
    );
    // The paper: per-pair time *falls* with s for the balanced
    // strategies (fixed BDM overhead amortizes over more pairs), then
    // flattens. Check monotone amortization plus flatness at s >= 0.4.
    let flat_region = |s: &Series| {
        let ys: Vec<f64> = s
            .points
            .iter()
            .filter(|(x, _)| *x >= 0.39)
            .map(|&(_, y)| y)
            .collect();
        ys.iter().cloned().fold(0.0, f64::max) / ys.iter().cloned().fold(f64::MAX, f64::min)
    };
    let bs_flat = flat_region(bs);
    let pr_flat = flat_region(pr);
    println!(
        "[{}] BlockSplit per-pair time amortizes monotonically and is flat (x{:.2}) for s >= 0.4",
        if bs.roughly_decreasing(0.01) && bs_flat < 1.5 {
            "PASS"
        } else {
            "WARN"
        },
        bs_flat
    );
    println!(
        "[{}] PairRange per-pair time amortizes monotonically and is flat (x{:.2}) for s >= 0.4",
        if pr.roughly_decreasing(0.01) && pr_flat < 1.5 {
            "PASS"
        } else {
            "WARN"
        },
        pr_flat
    );
    // Paper: "the Basic strategy is the fastest for a uniform block
    // distribution (s=0) because it does not suffer from the
    // additional BDM computation and load balancing overhead". In our
    // cost model the BDM job is cheaper relative to matching than on
    // the authors' testbed, so Basic lands in a near-tie at s=0 —
    // check that the balanced strategies' advantage *vanishes* there
    // (within 10%) while being >5x at s=1.
    let s0_gap = basic.first_y() / bs.first_y().min(pr.first_y());
    println!(
        "[{}] at s=0 the strategies converge: Basic/balanced = {:.2} (paper: Basic slightly ahead)",
        if s0_gap < 1.10 { "PASS" } else { "WARN" },
        s0_gap
    );

    // Machine-readable twin of the table above, so the SN-vs-BlockSplit
    // skew story (BENCH_fig_sn_window.json) can be compared against the
    // blocking strategies' skew behaviour without scraping logs.
    let json = Json::obj([
        ("bench", Json::str("fig09_skew")),
        ("entities", Json::Num(N_ENTITIES as f64)),
        ("blocks", Json::Num(BLOCKS as f64)),
        ("reduce_tasks", Json::Num(R as f64)),
        ("basic_degradation_at_s1", Json::Num(degradation)),
        (
            "ms_per_1e4_pairs",
            Json::Arr(
                series
                    .iter()
                    .map(|s| s.to_json("skew", "ms_per_1e4"))
                    .collect(),
            ),
        ),
    ]);
    write_bench_json("fig09_skew", &json).expect("bench json export");
}
