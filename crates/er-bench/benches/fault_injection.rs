//! Fault-tolerance overhead and recovery cost.
//!
//! The same ER workload (DS1-shaped corpus, BlockSplit, m = 8 map ×
//! r = 16 reduce tasks per job) runs N times in three modes on one
//! persistent worker pool:
//!
//! * **baseline** — the default fail-fast policy, no injection: the
//!   pre-fault-layer behavior;
//! * **retry-armed** — a 3-attempt retry budget but a fault-free run:
//!   measures the pure bookkeeping overhead of the fault layer (the
//!   per-attempt catch boundary plus the borrow-vs-take of reduce
//!   runs — non-final attempts stream borrowed runs, cloning records
//!   lazily), which must stay inside the run-to-run noise band;
//! * **recovery** — the same budget under a deterministic fail-once
//!   schedule striking ~10% of the 48 task slots (5 injected panics
//!   per run): measures the wall-clock cost of re-executing failed
//!   attempts.
//!
//! Outputs are asserted byte-identical across all three modes and the
//! injected-event gauges are asserted to count the schedule exactly;
//! `BENCH_fault_injection.json` records the three series plus the
//! gauges.

use std::sync::Arc;
use std::time::Instant;

use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use er_loadbalance::driver::{run_er_in, ErConfig};
use er_loadbalance::StrategyKind;
use mr_engine::fault::{FaultKind, FaultPlan, FaultPolicy};
use mr_engine::input::partition_evenly;
use mr_engine::runtime::{Runtime, RuntimeConfig};

const RUNS: usize = 12;
const PARALLELISM: usize = 4;
const MAP_TASKS: usize = 8;
const REDUCE_TASKS: usize = 16;

/// Fail-once panics over ~10% of the 2 × (8 + 16) = 48 task slots.
const INJECTIONS: usize = 5;

fn fail_once_schedule() -> FaultPlan {
    FaultPlan::new()
        .silence_injected_panics()
        .panic_at("bdm", FaultKind::Map, 0, 1, "injected")
        .panic_at("bdm", FaultKind::Reduce, 3, 1, "injected")
        .panic_at("er-block-split", FaultKind::Map, 1, 1, "injected")
        .panic_at("er-block-split", FaultKind::Reduce, 7, 1, "injected")
        .panic_at("er-block-split", FaultKind::Reduce, 12, 1, "injected")
}

fn main() {
    println!("== Fault tolerance: retry overhead and recovery wall ==\n");
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(0.005));
    let input = partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        MAP_TASKS,
    );
    let config = ErConfig::new(StrategyKind::BlockSplit)
        .with_reduce_tasks(REDUCE_TASKS)
        .with_parallelism(PARALLELISM);
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(PARALLELISM));

    // (mode label, retry policy, injection schedule)
    let modes: [(&str, FaultPolicy, FaultPlan); 3] = [
        ("baseline", FaultPolicy::fail_fast(), FaultPlan::new()),
        ("retry_armed", FaultPolicy::retry(3), FaultPlan::new()),
        ("recovery", FaultPolicy::retry(3), fail_once_schedule()),
    ];

    let mut medians = [0.0f64; 3];
    let mut series: Vec<Vec<f64>> = Vec::with_capacity(3);
    let mut reference: Option<er_core::MatchResult> = None;
    let (mut injected_failures, mut injected_retries) = (0u64, 0u64);
    for (slot, (label, policy, plan)) in modes.iter().enumerate() {
        let mut walls = Vec::with_capacity(RUNS);
        for run in 0..RUNS {
            let start = Instant::now();
            let mut workflow = runtime
                .workflow(format!("{label}-{run}"))
                .with_fault_policy(*policy)
                .with_fault_plan(plan.clone());
            let stages = run_er_in(&mut workflow, input.clone(), &config).unwrap();
            let metrics = workflow.finish();
            walls.push(start.elapsed().as_secs_f64() * 1e3);
            match &reference {
                None => reference = Some(stages.result),
                Some(r) => assert_eq!(
                    stages.result.pair_set(),
                    r.pair_set(),
                    "{label} run {run} drifted from the baseline output"
                ),
            }
            let expected = if plan.is_empty() {
                0
            } else {
                INJECTIONS as u64
            };
            assert_eq!(
                metrics.task_failures(),
                expected,
                "{label} run {run}: gauges must count the schedule exactly"
            );
            assert_eq!(metrics.tasks_retried(), expected, "{label} run {run}");
            injected_failures = metrics.task_failures();
            injected_retries = metrics.tasks_retried();
        }
        medians[slot] = median_ms(&walls);
        series.push(walls);
    }
    assert_eq!(
        runtime.pool().threads_spawned(),
        PARALLELISM,
        "recovery must reuse the pool, never spawn replacement threads"
    );

    let [base, armed, recovery] = medians;
    let overhead_pct = (armed - base) / base * 100.0;
    let recovery_pct = (recovery - base) / base * 100.0;
    println!("runs per mode:        {RUNS}  (m = {MAP_TASKS}, r = {REDUCE_TASKS}, parallelism = {PARALLELISM})");
    println!("baseline median:      {base:.2} ms  (fail-fast, no injection)");
    println!("retry-armed median:   {armed:.2} ms  ({overhead_pct:+.1}% — fault-free overhead)");
    println!(
        "recovery median:      {recovery:.2} ms  ({recovery_pct:+.1}% — {INJECTIONS} fail-once panics over 48 task slots)"
    );
    let verdict = if overhead_pct.abs() <= 10.0 {
        "PASS retry-armed fault-free overhead within the 10% noise band"
    } else {
        "WARN retry-armed overhead outside the noise band — investigate"
    };
    println!("{verdict}");

    let json = Json::obj([
        ("bench", Json::str("fault_injection")),
        ("runs", Json::Num(RUNS as f64)),
        ("parallelism", Json::Num(PARALLELISM as f64)),
        ("map_tasks", Json::Num(MAP_TASKS as f64)),
        ("reduce_tasks", Json::Num(REDUCE_TASKS as f64)),
        ("injections", Json::Num(INJECTIONS as f64)),
        (
            "baseline_ms",
            Json::Arr(series[0].iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "retry_armed_ms",
            Json::Arr(series[1].iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "recovery_ms",
            Json::Arr(series[2].iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("baseline_median_ms", Json::Num(base)),
        ("retry_armed_median_ms", Json::Num(armed)),
        ("recovery_median_ms", Json::Num(recovery)),
        ("task_failures", Json::Num(injected_failures as f64)),
        ("tasks_retried", Json::Num(injected_retries as f64)),
        (
            "threads_spawned_once",
            Json::Num(runtime.pool().threads_spawned() as f64),
        ),
    ]);
    write_bench_json("fault_injection", &json).expect("bench json export");
}
