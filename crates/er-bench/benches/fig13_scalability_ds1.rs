//! Figure 13 — execution times and speedup vs cluster size (DS1).
//!
//! n from 1 to 100 nodes with m = 2n, r = 10n (paper §VI-C).
//! Expected shapes: Basic barely scales past 2 nodes (largest block ==
//! lower bound); BlockSplit and PairRange scale near-linearly to ~10
//! nodes, then flatten as per-task work shrinks toward task startup;
//! at n = 100 BlockSplit noses ahead of PairRange, whose extra map
//! output stops paying off on the small dataset.

use er_bench::table::{fmt_ms, TextTable};
use er_bench::{bdm_from_keys, simulate_strategy, ExperimentCost, Series, PAPER_SEED};
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::StrategyKind;

const NODE_STEPS: [usize; 7] = [1, 2, 5, 10, 20, 40, 100];

fn main() {
    println!("== Figure 13: execution times and speedup for DS1 (n = 1..100) ==");
    println!("   (m = 2n, r = 10n)\n");
    let cost = ExperimentCost::calibrated();
    let keys = key_sequence(&ds1_spec(PAPER_SEED));

    let strategies = [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ];
    let mut series: Vec<Series> = strategies
        .iter()
        .map(|s| Series::new(s.to_string()))
        .collect();
    let mut table = TextTable::new(&["n", "m", "r", "Basic", "BlockSplit", "PairRange"]);
    for &n in &NODE_STEPS {
        let m = 2 * n;
        let r = 10 * n;
        let bdm = bdm_from_keys(&keys, m);
        let mut cells = vec![n.to_string(), m.to_string(), r.to_string()];
        for (i, &strategy) in strategies.iter().enumerate() {
            let outcome = simulate_strategy(&bdm, strategy, n, r, &cost);
            series[i].push(n as f64, outcome.total_ms);
            cells.push(fmt_ms(outcome.total_ms));
        }
        table.row(cells);
    }
    table.print();

    println!("\n-- speedup (relative to n = 1) --\n");
    let mut table = TextTable::new(&["n", "Basic", "BlockSplit", "PairRange"]);
    for (idx, &n) in NODE_STEPS.iter().enumerate() {
        table.row(vec![
            n.to_string(),
            format!("{:.1}", series[0].speedup().points[idx].1),
            format!("{:.1}", series[1].speedup().points[idx].1),
            format!("{:.1}", series[2].speedup().points[idx].1),
        ]);
    }
    table.print();

    let basic_speedup_100 = series[0].speedup().last_y();
    let bs_speedup_10 = series[1].speedup().points[3].1;
    let pr_speedup_10 = series[2].speedup().points[3].1;
    println!(
        "\n[{}] Basic does not scale: speedup at n=100 is only {:.1} (paper: ~flat beyond 2 nodes)",
        if basic_speedup_100 < 4.0 {
            "PASS"
        } else {
            "WARN"
        },
        basic_speedup_100
    );
    println!(
        "[{}] BlockSplit speedup at n=10 is {:.1} (near-linear regime, paper: ~linear to 10 nodes)",
        if bs_speedup_10 > 5.0 { "PASS" } else { "WARN" },
        bs_speedup_10
    );
    println!(
        "[{}] PairRange speedup at n=10 is {:.1}",
        if pr_speedup_10 > 5.0 { "PASS" } else { "WARN" },
        pr_speedup_10
    );
    let bs_100 = series[1].last_y();
    let pr_100 = series[2].last_y();
    println!(
        "[{}] BlockSplit ≤ PairRange at n=100 on the small dataset ({} vs {}; paper: BlockSplit wins)",
        if bs_100 <= pr_100 * 1.05 { "PASS" } else { "WARN" },
        fmt_ms(bs_100),
        fmt_ms(pr_100)
    );
}
