//! Figure 13 — execution times and speedup vs cluster size (DS1).
//!
//! n from 1 to 100 nodes with m = 2n, r = 10n (paper §VI-C).
//! Expected shapes: Basic barely scales past 2 nodes (largest block ==
//! lower bound); BlockSplit and PairRange scale near-linearly to ~10
//! nodes, then flatten as per-task work shrinks toward task startup;
//! at n = 100 BlockSplit noses ahead of PairRange, whose extra map
//! output stops paying off on the small dataset.

use std::sync::Arc;

use er_bench::table::{fmt_ms, TextTable};
use er_bench::{
    bdm_from_keys, simulate_strategy, write_bench_json, ExperimentCost, Json, Series, PAPER_SEED,
};
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::driver::{run_er_in, ErConfig};
use er_loadbalance::StrategyKind;
use mr_engine::pool::WorkerPool;
use mr_engine::trace::{TraceRecorder, TraceReport, TraceSink};
use mr_engine::workflow::Workflow;

const NODE_STEPS: [usize; 7] = [1, 2, 5, 10, 20, 40, 100];

/// Laptop-scale engine sweep over worker parallelism (the local
/// analogue of the figure's cluster-size axis): wall time must fall
/// while the streaming reduce gauges — a function of (input, job),
/// not of scheduling — stay *identical*, the memory-side determinism
/// companion to the byte-identical `reduce_outputs` guarantee. Each
/// run carries a trace recorder, so the per-slot utilization series —
/// how evenly the scheduler kept the workers busy — lands in the
/// record next to the wall it explains.
/// Returns one JSON record per parallelism level.
fn engine_parallelism_sweep() -> Vec<Json> {
    let ds = er_datagen::generate_products(&ds1_spec(PAPER_SEED).scaled(0.01));
    let input: Vec<Vec<((), er_loadbalance::Ent)>> = mr_engine::input::partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        8,
    );
    let mut records = Vec::new();
    let mut reference: Option<(u64, u64)> = None;
    let mut table = TextTable::new(&[
        "parallelism",
        "wall",
        "peak group",
        "peak resident",
        "slot utilization",
    ]);
    for parallelism in [1usize, 2, 4] {
        let config = ErConfig::new(StrategyKind::BlockSplit)
            .with_reduce_tasks(40)
            .with_parallelism(parallelism)
            .with_count_only(true);
        let recorder = Arc::new(TraceRecorder::new());
        let concrete: Arc<TraceRecorder> = Arc::clone(&recorder);
        let sink: Arc<dyn TraceSink> = concrete;
        let pool = Arc::new(WorkerPool::new(parallelism));
        let mut workflow =
            Workflow::on_pool(format!("fig13-x{parallelism}"), pool).with_trace_sink(sink);
        let stages = run_er_in(&mut workflow, input.clone(), &config).unwrap();
        workflow.finish();
        let m = &stages.match_metrics;
        let gauges = (m.peak_group_len(), m.peak_resident_records());
        match &reference {
            None => reference = Some(gauges),
            Some(r) => assert_eq!(
                *r, gauges,
                "streaming memory gauges must not depend on parallelism"
            ),
        }
        let report = TraceReport::from_events(&recorder.events());
        let utilization: Vec<(usize, f64)> = report.utilization().into_iter().collect();
        let util_cells: Vec<String> = utilization
            .iter()
            .map(|(slot, frac)| format!("{slot}:{:.0}%", frac * 100.0))
            .collect();
        let wall_ms = m.wall.as_secs_f64() * 1e3;
        table.row(vec![
            parallelism.to_string(),
            fmt_ms(wall_ms),
            gauges.0.to_string(),
            gauges.1.to_string(),
            util_cells.join(" "),
        ]);
        records.push(Json::obj([
            ("parallelism", Json::Num(parallelism as f64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("peak_group_len", Json::Num(gauges.0 as f64)),
            ("peak_resident_records", Json::Num(gauges.1 as f64)),
            (
                "peak_resident_fraction",
                Json::Num(m.peak_resident_fraction()),
            ),
            (
                "slot_utilization",
                Json::Arr(
                    utilization
                        .iter()
                        .map(|&(slot, frac)| {
                            Json::obj([
                                ("slot", Json::Num(slot as f64)),
                                ("busy_fraction", Json::Num(frac)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    table.print();
    records
}

fn main() {
    println!("== Figure 13: execution times and speedup for DS1 (n = 1..100) ==");
    println!("   (m = 2n, r = 10n)\n");
    let cost = ExperimentCost::calibrated();
    let keys = key_sequence(&ds1_spec(PAPER_SEED));

    let strategies = [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ];
    let mut series: Vec<Series> = strategies
        .iter()
        .map(|s| Series::new(s.to_string()))
        .collect();
    let mut table = TextTable::new(&["n", "m", "r", "Basic", "BlockSplit", "PairRange"]);
    for &n in &NODE_STEPS {
        let m = 2 * n;
        let r = 10 * n;
        let bdm = bdm_from_keys(&keys, m);
        let mut cells = vec![n.to_string(), m.to_string(), r.to_string()];
        for (i, &strategy) in strategies.iter().enumerate() {
            let outcome = simulate_strategy(&bdm, strategy, n, r, &cost);
            series[i].push(n as f64, outcome.total_ms);
            cells.push(fmt_ms(outcome.total_ms));
        }
        table.row(cells);
    }
    table.print();

    println!("\n-- speedup (relative to n = 1) --\n");
    let mut table = TextTable::new(&["n", "Basic", "BlockSplit", "PairRange"]);
    for (idx, &n) in NODE_STEPS.iter().enumerate() {
        table.row(vec![
            n.to_string(),
            format!("{:.1}", series[0].speedup().points[idx].1),
            format!("{:.1}", series[1].speedup().points[idx].1),
            format!("{:.1}", series[2].speedup().points[idx].1),
        ]);
    }
    table.print();

    let basic_speedup_100 = series[0].speedup().last_y();
    let bs_speedup_10 = series[1].speedup().points[3].1;
    let pr_speedup_10 = series[2].speedup().points[3].1;
    println!(
        "\n[{}] Basic does not scale: speedup at n=100 is only {:.1} (paper: ~flat beyond 2 nodes)",
        if basic_speedup_100 < 4.0 {
            "PASS"
        } else {
            "WARN"
        },
        basic_speedup_100
    );
    println!(
        "[{}] BlockSplit speedup at n=10 is {:.1} (near-linear regime, paper: ~linear to 10 nodes)",
        if bs_speedup_10 > 5.0 { "PASS" } else { "WARN" },
        bs_speedup_10
    );
    println!(
        "[{}] PairRange speedup at n=10 is {:.1}",
        if pr_speedup_10 > 5.0 { "PASS" } else { "WARN" },
        pr_speedup_10
    );
    let bs_100 = series[1].last_y();
    let pr_100 = series[2].last_y();
    println!(
        "[{}] BlockSplit ≤ PairRange at n=100 on the small dataset ({} vs {}; paper: BlockSplit wins)",
        if bs_100 <= pr_100 * 1.05 { "PASS" } else { "WARN" },
        fmt_ms(bs_100),
        fmt_ms(pr_100)
    );

    println!("\n-- engine check: wall vs parallelism, gauges invariant (DS1 1%, real run) --\n");
    let engine_scaling = engine_parallelism_sweep();

    let sim_series: Vec<Json> = series
        .iter()
        .map(|s| s.to_json("nodes", "total_ms"))
        .collect();
    let json = Json::obj([
        ("bench", Json::str("fig13_scalability_ds1")),
        ("max_nodes", Json::Num(*NODE_STEPS.last().unwrap() as f64)),
        ("simulated_ms", Json::Arr(sim_series)),
        ("engine_scaling", Json::Arr(engine_scaling)),
    ]);
    write_bench_json("fig13_scalability_ds1", &json).expect("bench json export");
}
