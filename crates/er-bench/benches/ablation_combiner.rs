//! Ablation — the BDM job's combiner (paper footnote 2).
//!
//! Real execution of Algorithm 3 on a scaled DS1 with and without the
//! per-map-task combiner, reporting shuffled record counts and wall
//! time. The result is identical either way; the combiner collapses
//! each map task's counts to one record per (block, partition).

use std::sync::Arc;
use std::time::Instant;

use er_bench::table::{fmt_count, fmt_ms, TextTable};
use er_bench::PAPER_SEED;
use er_core::blocking::PrefixBlocking;
use er_loadbalance::bdm_job::compute_bdm;
use mr_engine::input::partition_evenly;

fn main() {
    println!("== Ablation: BDM-job combiner on/off (DS1-like @5%, m = 20, r = 20) ==\n");
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(0.05));
    let entities: Vec<((), er_loadbalance::Ent)> = ds
        .entities
        .iter()
        .map(|e| ((), Arc::new(e.clone())))
        .collect();
    let mut table = TextTable::new(&["combiner", "shuffled records", "wall time", "bdm blocks"]);
    let mut shuffled = Vec::new();
    let mut bdms = Vec::new();
    for use_combiner in [false, true] {
        let input = partition_evenly(entities.clone(), 20);
        let start = Instant::now();
        let (bdm, _, metrics) = compute_bdm(
            input,
            Arc::new(PrefixBlocking::title3()),
            20,
            4,
            use_combiner,
        )
        .unwrap();
        let wall = start.elapsed().as_secs_f64() * 1e3;
        shuffled.push(metrics.map_output_records());
        table.row(vec![
            if use_combiner { "on" } else { "off" }.into(),
            fmt_count(metrics.map_output_records()),
            fmt_ms(wall),
            bdm.num_blocks().to_string(),
        ]);
        bdms.push(bdm);
    }
    table.print();
    println!(
        "\n[{}] combiner shrinks the shuffle {:.2}x without changing the BDM (equal: {})",
        if shuffled[1] < shuffled[0] && bdms[0] == bdms[1] {
            "PASS"
        } else {
            "WARN"
        },
        shuffled[0] as f64 / shuffled[1] as f64,
        bdms[0] == bdms[1]
    );
}
