//! Trace instrumentation — overhead of the event stream and the
//! post-run execution report.
//!
//! The same ER workload (DS1-shaped corpus, BlockSplit, pooled
//! workflow) runs N times back to back two ways:
//!
//! * **untraced** — no sink attached: every emit site must collapse to
//!   a single branch, so these walls are the noise floor;
//! * **traced** — a [`TraceRecorder`] attached per run: the full event
//!   stream (job/stage/attempt lifecycle, pool scheduling, shuffle) is
//!   captured in memory.
//!
//! Outputs are asserted byte-identical across modes; the recorded
//! per-category counts are asserted against the workflow gauges; the
//! last traced run is rendered as the full [`TraceReport`] (per-worker
//! Gantt, critical path vs. sum-of-walls, reduce-load skew, queue-wait
//! percentiles). `BENCH_trace_report.json` records both wall series,
//! the deterministic event counts, and the nested report.

use std::sync::Arc;
use std::time::Instant;

use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use er_loadbalance::driver::{run_er_in, ErConfig, ErStages};
use er_loadbalance::StrategyKind;
use mr_engine::input::partition_evenly;
use mr_engine::pool::WorkerPool;
use mr_engine::trace::{TraceRecorder, TraceReport, TraceSink};
use mr_engine::workflow::{Workflow, WorkflowMetrics};

const RUNS: usize = 10;
const PARALLELISM: usize = 4;

fn main() {
    println!("== Trace instrumentation: overhead + execution report ==\n");
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(0.02));
    let input = partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        8,
    );
    let config = ErConfig::new(StrategyKind::BlockSplit)
        .with_reduce_tasks(16)
        .with_parallelism(PARALLELISM);
    let pool = Arc::new(WorkerPool::new(PARALLELISM));

    let run = |sink: Option<Arc<dyn TraceSink>>, run: usize| -> (f64, ErStages, WorkflowMetrics) {
        let start = Instant::now();
        let mut workflow = Workflow::on_pool(format!("trace-bench-{run}"), Arc::clone(&pool));
        if let Some(sink) = sink {
            workflow = workflow.with_trace_sink(sink);
        }
        let stages = run_er_in(&mut workflow, input.clone(), &config).unwrap();
        let metrics = workflow.finish();
        (start.elapsed().as_secs_f64() * 1e3, stages, metrics)
    };

    // Noise floor: no sink — every emit site is one branch.
    let (_, reference, _) = run(None, 0);
    let mut untraced_ms = Vec::with_capacity(RUNS);
    for i in 0..RUNS {
        let (wall, stages, _) = run(None, i);
        untraced_ms.push(wall);
        assert_eq!(stages.result.pair_set(), reference.result.pair_set());
    }

    // Instrumented: a fresh in-memory recorder per run.
    let mut traced_ms = Vec::with_capacity(RUNS);
    let mut last: Option<(Arc<TraceRecorder>, WorkflowMetrics)> = None;
    for i in 0..RUNS {
        let recorder = Arc::new(TraceRecorder::new());
        let concrete: Arc<TraceRecorder> = Arc::clone(&recorder);
        let sink: Arc<dyn TraceSink> = concrete;
        let (wall, stages, metrics) = run(Some(sink), i);
        traced_ms.push(wall);
        assert_eq!(
            stages.result.pair_set(),
            reference.result.pair_set(),
            "tracing must not change the output"
        );
        last = Some((recorder, metrics));
    }
    let (recorder, metrics) = last.expect("RUNS > 0");

    // Event counts vs workflow gauges: emitted at the increment sites,
    // so they can never disagree.
    assert_eq!(recorder.count("attempt_failed"), metrics.task_failures());
    assert_eq!(recorder.count("attempt_retried"), metrics.tasks_retried());
    assert_eq!(
        recorder.count("spill_run_sealed"),
        metrics.spilled_runs(),
        "every sealed spill run must be traced"
    );
    assert_eq!(
        recorder.count("stage_finished"),
        metrics.num_stages() as u64
    );
    let logical = recorder.logical_events();
    assert!(!logical.is_empty(), "a traced run must record events");

    let report = TraceReport::from_events(&recorder.events());
    println!("{}", report.to_text());

    let u_med = median_ms(&untraced_ms);
    let t_med = median_ms(&traced_ms);
    println!("runs per mode:        {RUNS}  (m = 8, r = 16, parallelism = {PARALLELISM})");
    println!("untraced median:      {u_med:.2} ms  (no sink: emit = one branch)");
    println!(
        "traced median:        {t_med:.2} ms  ({} events recorded)",
        recorder.len()
    );
    println!(
        "per-run delta:        {:+.2} ms ({:+.1}%)",
        t_med - u_med,
        (t_med - u_med) / u_med * 100.0
    );
    let verdict = if t_med <= u_med * 1.25 {
        "PASS in-memory tracing stays within the noise band"
    } else {
        "WARN tracing overhead above 25% — investigate emit sites"
    };
    println!("{verdict}");

    // Top-level numerics are the drift-guarded surface: wall medians
    // (wide band) plus the deterministic event counts (exact). The
    // full report nests below and is informational.
    let json = Json::obj([
        ("bench", Json::str("trace_report")),
        ("runs", Json::Num(RUNS as f64)),
        ("parallelism", Json::Num(PARALLELISM as f64)),
        (
            "untraced_ms",
            Json::Arr(untraced_ms.iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "traced_ms",
            Json::Arr(traced_ms.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("untraced_median_ms", Json::Num(u_med)),
        ("traced_median_ms", Json::Num(t_med)),
        ("logical_events", Json::Num(logical.len() as f64)),
        (
            "attempt_finished",
            Json::Num(recorder.count("attempt_finished") as f64),
        ),
        (
            "spill_run_sealed",
            Json::Num(recorder.count("spill_run_sealed") as f64),
        ),
        (
            "stages_traced",
            Json::Num(recorder.count("stage_finished") as f64),
        ),
        ("report", report.to_json()),
    ]);
    write_bench_json("trace_report", &json).expect("bench json export");
}
