//! Out-of-core memory-cap study: proves the map-side spill threshold
//! bounds peak resident records on a corpus several times larger than
//! the threshold, with byte-identical match output — then exports the
//! gauges as `BENCH_memory_cap.json` so the bound is tracked across
//! PRs, not just asserted once.
//!
//! Two runs of the same BlockSplit pipeline: spill-free (the legacy
//! layout, peak map residency == task output) and spilling every
//! `threshold` records (peak map residency == O(threshold)). The
//! report asserts the acceptance bound — whole-run resident records
//! (worst map task + worst reduce merge window) stay below half the
//! input — and that spilling is invisible in the output.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use er_core::blocking::PrefixBlocking;
use er_loadbalance::driver::{run_er, ErConfig, ErOutcome};
use er_loadbalance::StrategyKind;
use mr_engine::input::partition_evenly;

const MAP_TASKS: usize = 8;

fn pipeline_input(scale: f64) -> (Vec<Vec<((), er_loadbalance::Ent)>>, u64) {
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(scale));
    let n = ds.entities.len() as u64;
    let input = partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        MAP_TASKS,
    );
    (input, n)
}

fn result_bits(outcome: &ErOutcome) -> Vec<u64> {
    outcome.result.iter().map(|(_, s)| s.to_bits()).collect()
}

fn workflow_reduce_peak(outcome: &ErOutcome) -> u64 {
    outcome
        .workflow
        .stages
        .iter()
        .map(mr_engine::metrics::JobMetrics::peak_resident_records)
        .max()
        .unwrap_or(0)
}

fn report_memory_cap(c: &mut Criterion) {
    let (scale, reps) = if c.is_test_mode() {
        (0.005, 1)
    } else {
        (0.02, 5)
    };
    let (input, n) = pipeline_input(scale);
    // Each map task holds ~n/MAP_TASKS records; spill at a quarter of
    // that so the corpus is >= 4x the threshold per task.
    let threshold = (n as usize / MAP_TASKS / 4).max(1);
    let config = ErConfig::new(StrategyKind::BlockSplit)
        .with_blocking(Arc::new(PrefixBlocking::title3()))
        .with_reduce_tasks(16)
        .with_parallelism(4);
    let spilling = config.clone().with_spill_threshold(Some(threshold));

    let mut plain_walls_ms = Vec::with_capacity(reps);
    let mut spill_walls_ms = Vec::with_capacity(reps);
    let mut plain_out = None;
    let mut spill_out = None;
    for _ in 0..reps {
        let plain = run_er(input.clone(), &config).unwrap();
        plain_walls_ms.push(plain.workflow.wall.as_secs_f64() * 1e3);
        plain_out = Some(plain);
        let spilled = run_er(input.clone(), &spilling).unwrap();
        spill_walls_ms.push(spilled.workflow.wall.as_secs_f64() * 1e3);
        spill_out = Some(spilled);
    }
    let plain = plain_out.expect("at least one rep");
    let spilled = spill_out.expect("at least one rep");

    // Spilling must be pure mechanism: same pairs, same score bits.
    assert_eq!(
        plain.result.pair_set(),
        spilled.result.pair_set(),
        "spilling changed the matched pairs"
    );
    assert_eq!(
        result_bits(&plain),
        result_bits(&spilled),
        "spilling changed the score bits"
    );

    let plain_map_peak = plain.workflow.map_peak_resident_records();
    let spill_map_peak = spilled.workflow.map_peak_resident_records();
    let spill_reduce_peak = workflow_reduce_peak(&spilled);
    let resident = spill_map_peak + spill_reduce_peak;
    let resident_fraction = resident as f64 / n as f64;
    println!(
        "memory cap (scale {scale}, {n} records, threshold {threshold}): \
         map peak {plain_map_peak} -> {spill_map_peak} records \
         ({} sealed runs), reduce merge peak {spill_reduce_peak}; \
         whole-run resident {resident} = {resident_fraction:.3}x input",
        spilled.workflow.spilled_runs(),
    );
    assert!(
        spilled.workflow.spilled_runs() > 0,
        "a 4x-threshold corpus must spill"
    );
    // Multi-key blocking may hold the final record's few replicas on
    // top of the sealed threshold.
    assert!(
        spill_map_peak <= threshold as u64 + 4,
        "map peak {spill_map_peak} must be bounded by the threshold {threshold}"
    );
    assert!(
        resident < n / 2,
        "whole-run resident set {resident} must stay below half the {n}-record input"
    );

    let json = Json::obj([
        ("bench", Json::str("memory_cap")),
        ("job", Json::str("block_split_ds1")),
        ("scale", Json::Num(scale)),
        ("samples", Json::Num(reps as f64)),
        ("input_records", Json::Num(n as f64)),
        ("spill_threshold", Json::Num(threshold as f64)),
        (
            "spilled_runs",
            Json::Num(spilled.workflow.spilled_runs() as f64),
        ),
        ("map_peak_plain", Json::Num(plain_map_peak as f64)),
        ("map_peak_spilling", Json::Num(spill_map_peak as f64)),
        ("reduce_merge_peak", Json::Num(spill_reduce_peak as f64)),
        ("resident_fraction", Json::Num(resident_fraction)),
        (
            "median_wall_ms_plain",
            Json::Num(median_ms(&plain_walls_ms)),
        ),
        (
            "median_wall_ms_spilling",
            Json::Num(median_ms(&spill_walls_ms)),
        ),
    ]);
    write_bench_json("memory_cap", &json).expect("bench json export");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = report_memory_cap
}
criterion_main!(benches);
