//! Figure 14 — execution times and speedup vs cluster size (DS2).
//!
//! The large dataset: ~1.4 M entities, pair volume ~2 000× DS1's.
//! Expected shapes: BlockSplit and PairRange scale near-linearly to
//! ~40 nodes (the reduce work per task stays far above task startup
//! much longer than for DS1); PairRange matches or beats BlockSplit —
//! its map-output overhead is amortized by the huge comparison volume
//! ("the benefit of optimally balanced reduce tasks outweighs the
//! additional overhead of handling more key-value pairs").
//!
//! Exports `BENCH_fig14_scalability_ds2.json` (validated in CI by
//! `validate_bench_json`).

use er_bench::table::{fmt_ms, TextTable};
use er_bench::{
    bdm_from_keys, simulate_strategy, write_bench_json, ExperimentCost, Json, Series, PAPER_SEED,
};
use er_datagen::dataset::key_sequence;
use er_datagen::ds2_spec;
use er_loadbalance::StrategyKind;

const NODE_STEPS: [usize; 6] = [10, 20, 40, 60, 80, 100];

fn main() {
    println!("== Figure 14: execution times and speedup for DS2 (n = 10..100) ==");
    println!("   (m = 2n, r = 10n; BlockSplit & PairRange — Basic is hopeless here)\n");
    let cost = ExperimentCost::calibrated();
    let keys = key_sequence(&ds2_spec(PAPER_SEED));
    println!("   DS2-like: {} entities\n", keys.len());

    let strategies = [StrategyKind::BlockSplit, StrategyKind::PairRange];
    let mut series: Vec<Series> = strategies
        .iter()
        .map(|s| Series::new(s.to_string()))
        .collect();
    let mut table = TextTable::new(&["n", "m", "r", "BlockSplit", "PairRange"]);
    for &n in &NODE_STEPS {
        let m = 2 * n;
        let r = 10 * n;
        let bdm = bdm_from_keys(&keys, m);
        let mut cells = vec![n.to_string(), m.to_string(), r.to_string()];
        for (i, &strategy) in strategies.iter().enumerate() {
            let outcome = simulate_strategy(&bdm, strategy, n, r, &cost);
            series[i].push(n as f64, outcome.total_ms);
            cells.push(fmt_ms(outcome.total_ms));
        }
        table.row(cells);
    }
    table.print();

    println!("\n-- speedup (relative to n = 10, x10) --\n");
    let mut table = TextTable::new(&["n", "BlockSplit", "PairRange"]);
    for (idx, &n) in NODE_STEPS.iter().enumerate() {
        table.row(vec![
            n.to_string(),
            format!("{:.1}", 10.0 * series[0].speedup().points[idx].1),
            format!("{:.1}", 10.0 * series[1].speedup().points[idx].1),
        ]);
    }
    table.print();

    // Near-linear to 40 nodes: going 10 -> 40 should buy ~3-4x.
    let bs_40 = 10.0 * series[0].speedup().points[2].1;
    let pr_40 = 10.0 * series[1].speedup().points[2].1;
    println!(
        "\n[{}] BlockSplit speedup at n=40 is {:.1} (paper: near-linear to ~40 nodes)",
        if bs_40 > 25.0 { "PASS" } else { "WARN" },
        bs_40
    );
    println!(
        "[{}] PairRange speedup at n=40 is {:.1}",
        if pr_40 > 25.0 { "PASS" } else { "WARN" },
        pr_40
    );
    let pr_100 = series[1].last_y();
    let bs_100 = series[0].last_y();
    println!(
        "[{}] PairRange ≤ BlockSplit at n=100 on the large dataset ({} vs {}; paper: PairRange preferable)",
        if pr_100 <= bs_100 * 1.05 { "PASS" } else { "WARN" },
        fmt_ms(pr_100),
        fmt_ms(bs_100)
    );

    let rows: Vec<Json> = NODE_STEPS
        .iter()
        .enumerate()
        .map(|(idx, &n)| {
            Json::obj([
                ("nodes", Json::Num(n as f64)),
                ("map_tasks", Json::Num(2.0 * n as f64)),
                ("reduce_tasks", Json::Num(10.0 * n as f64)),
                ("blocksplit_ms", Json::Num(series[0].points[idx].1)),
                ("pairrange_ms", Json::Num(series[1].points[idx].1)),
                (
                    "blocksplit_speedup",
                    Json::Num(10.0 * series[0].speedup().points[idx].1),
                ),
                (
                    "pairrange_speedup",
                    Json::Num(10.0 * series[1].speedup().points[idx].1),
                ),
            ])
        })
        .collect();
    let json = Json::obj([
        ("bench", Json::str("fig14_scalability_ds2")),
        ("entities", Json::Num(keys.len() as f64)),
        ("blocksplit_speedup_n40", Json::Num(bs_40)),
        ("pairrange_speedup_n40", Json::Num(pr_40)),
        ("series", Json::Arr(rows)),
    ]);
    write_bench_json("fig14_scalability_ds2", &json).expect("bench json export");
}
