//! Ablation — BlockSplit's greedy LPT assignment vs round-robin.
//!
//! Algorithm 1 sorts match tasks by descending size and places each on
//! the least-loaded reduce task. A cheaper round-robin placement needs
//! no sort — this bench shows what it costs in balance on the DS1-like
//! workload (answer: a lot, whenever task sizes are heterogeneous).

use er_bench::table::TextTable;
use er_bench::{bdm_from_keys, PAPER_SEED};
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::block_split::{create_match_tasks, MatchTask, TaskAssignment};

fn round_robin_max_load(tasks: &[MatchTask], r: usize) -> u64 {
    let mut loads = vec![0u64; r];
    for (i, t) in tasks.iter().enumerate() {
        loads[i % r] += t.comparisons;
    }
    loads.into_iter().max().unwrap_or(0)
}

fn main() {
    println!("== Ablation: greedy LPT vs round-robin match-task assignment ==\n");
    let keys = key_sequence(&ds1_spec(PAPER_SEED));
    let bdm = bdm_from_keys(&keys, 20);
    let mut table = TextTable::new(&["r", "tasks", "LPT max load", "RR max load", "RR/LPT"]);
    let mut ratios = Vec::new();
    for r in [20usize, 40, 80, 160] {
        let tasks = create_match_tasks(&bdm, r);
        let lpt = TaskAssignment::greedy(tasks.clone(), r);
        let lpt_max = *lpt.loads().iter().max().unwrap();
        let rr_max = round_robin_max_load(&tasks, r);
        let ratio = rr_max as f64 / lpt_max as f64;
        ratios.push(ratio);
        table.row(vec![
            r.to_string(),
            tasks.len().to_string(),
            lpt_max.to_string(),
            rr_max.to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    table.print();
    let worst = ratios.iter().cloned().fold(0.0, f64::max);
    println!(
        "\n[{}] LPT beats round-robin by up to {:.2}x on makespan-bound load",
        if worst >= 1.0 { "PASS" } else { "WARN" },
        worst
    );
    println!("    (LPT guarantee: within 4/3 of the optimal max load.)");
}
