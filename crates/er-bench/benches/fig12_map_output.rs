//! Figure 12 — key-value pairs emitted by the map phase vs r (DS1).
//!
//! Exact counts (no timing). Expected shapes: Basic is flat at the
//! entity count (no replication); BlockSplit is a step function of r
//! (more blocks cross the `P/r` threshold and split, but each split
//! block replicates a fixed m×); PairRange grows almost linearly with
//! r and overtakes BlockSplit for large r.
//!
//! Exports `BENCH_fig12_map_output.json` (validated in CI by
//! `validate_bench_json`).

use er_bench::table::{fmt_count, TextTable};
use er_bench::{bdm_from_keys, write_bench_json, Json, PAPER_SEED};
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::analysis::analyze;
use er_loadbalance::pair_range::ranges::RangePolicy;
use er_loadbalance::StrategyKind;

const M: usize = 20;

fn main() {
    println!("== Figure 12: map output (key-value pairs) vs number of reduce tasks ==");
    println!("   (DS1-like, m = {M}; exact analytic counts)\n");
    let keys = key_sequence(&ds1_spec(PAPER_SEED));
    let bdm = bdm_from_keys(&keys, M);
    let entities = keys.len() as u64;

    let mut table = TextTable::new(&["r", "Basic", "BlockSplit", "PairRange"]);
    let mut basic_all = Vec::new();
    let mut bs_all = Vec::new();
    let mut pr_all = Vec::new();
    let mut rows = Vec::new();
    for r in (20..=160).step_by(20) {
        let basic = analyze(&bdm, StrategyKind::Basic, r, RangePolicy::CeilDiv);
        let bs = analyze(&bdm, StrategyKind::BlockSplit, r, RangePolicy::CeilDiv);
        let pr = analyze(&bdm, StrategyKind::PairRange, r, RangePolicy::CeilDiv);
        basic_all.push(basic.map_output_records);
        bs_all.push(bs.map_output_records);
        pr_all.push(pr.map_output_records);
        table.row(vec![
            r.to_string(),
            fmt_count(basic.map_output_records),
            fmt_count(bs.map_output_records),
            fmt_count(pr.map_output_records),
        ]);
        rows.push(Json::obj([
            ("reduce_tasks", Json::Num(r as f64)),
            ("basic", Json::Num(basic.map_output_records as f64)),
            ("blocksplit", Json::Num(bs.map_output_records as f64)),
            ("pairrange", Json::Num(pr.map_output_records as f64)),
        ]));
    }
    table.print();

    println!(
        "\n[{}] Basic never replicates: constant at the {} input entities",
        if basic_all.iter().all(|&v| v == entities) {
            "PASS"
        } else {
            "WARN"
        },
        fmt_count(entities)
    );
    let bs_distinct: std::collections::BTreeSet<u64> = bs_all.iter().copied().collect();
    println!(
        "[{}] BlockSplit is a step function: {} distinct values over 8 r-settings, all ≥ input",
        if bs_distinct.len() < 8 && bs_all.iter().all(|&v| v >= entities) {
            "PASS"
        } else {
            "WARN"
        },
        bs_distinct.len()
    );
    let monotone = pr_all.windows(2).all(|w| w[1] >= w[0]);
    let growth = pr_all.last().unwrap() - pr_all.first().unwrap();
    println!(
        "[{}] PairRange grows ~linearly with r (monotone: {monotone}, +{} pairs from r=20 to 160)",
        if monotone && growth > 0 {
            "PASS"
        } else {
            "WARN"
        },
        fmt_count(growth)
    );
    println!(
        "[{}] PairRange emits the most at large r: {} vs BlockSplit {}",
        if pr_all.last() > bs_all.last() {
            "PASS"
        } else {
            "WARN"
        },
        fmt_count(*pr_all.last().unwrap()),
        fmt_count(*bs_all.last().unwrap())
    );

    let json = Json::obj([
        ("bench", Json::str("fig12_map_output")),
        ("map_tasks", Json::Num(M as f64)),
        ("entities", Json::Num(entities as f64)),
        ("pairrange_growth", Json::Num(growth as f64)),
        ("series", Json::Arr(rows)),
    ]);
    write_bench_json("fig12_map_output", &json).expect("bench json export");
}
