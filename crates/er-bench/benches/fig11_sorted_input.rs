//! Figure 11 — sorted vs unsorted input (DS1).
//!
//! A dataset sorted by title confines each block's entities to few
//! (often one) input partitions, crippling BlockSplit's
//! partition-based sub-splitting; the paper measures an ~80 %
//! slowdown. PairRange's enumeration is independent of the input
//! partitioning and stays put.
//!
//! Exports `BENCH_fig11_sorted_input.json` (validated in CI by
//! `validate_bench_json`).

use er_bench::table::{fmt_ms, TextTable};
use er_bench::{
    bdm_from_keys, simulate_strategy, sorted_keys, write_bench_json, ExperimentCost, Json,
    PAPER_SEED,
};
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::StrategyKind;

const NODES: usize = 10;
const M: usize = 20;

fn main() {
    println!("== Figure 11: BlockSplit / PairRange on unsorted vs sorted DS1 ==");
    println!("   (n = {NODES}, m = {M}; sorted == dataset ordered by blocking key)\n");
    let cost = ExperimentCost::calibrated();
    let unsorted = key_sequence(&ds1_spec(PAPER_SEED));
    let sorted = sorted_keys(&unsorted);
    let bdm_unsorted = bdm_from_keys(&unsorted, M);
    let bdm_sorted = bdm_from_keys(&sorted, M);

    let mut table = TextTable::new(&[
        "r",
        "BlockSplit",
        "BlockSplit(sorted)",
        "PairRange",
        "PairRange(sorted)",
    ]);
    let mut ratio_bs: Vec<f64> = Vec::new();
    let mut ratio_pr: Vec<f64> = Vec::new();
    let mut rows = Vec::new();
    for r in (20..=160).step_by(20) {
        let bs_u = simulate_strategy(&bdm_unsorted, StrategyKind::BlockSplit, NODES, r, &cost);
        let bs_s = simulate_strategy(&bdm_sorted, StrategyKind::BlockSplit, NODES, r, &cost);
        let pr_u = simulate_strategy(&bdm_unsorted, StrategyKind::PairRange, NODES, r, &cost);
        let pr_s = simulate_strategy(&bdm_sorted, StrategyKind::PairRange, NODES, r, &cost);
        ratio_bs.push(bs_s.total_ms / bs_u.total_ms);
        ratio_pr.push(pr_s.total_ms / pr_u.total_ms);
        table.row(vec![
            r.to_string(),
            fmt_ms(bs_u.total_ms),
            fmt_ms(bs_s.total_ms),
            fmt_ms(pr_u.total_ms),
            fmt_ms(pr_s.total_ms),
        ]);
        rows.push(Json::obj([
            ("reduce_tasks", Json::Num(r as f64)),
            ("blocksplit_ms", Json::Num(bs_u.total_ms)),
            ("blocksplit_sorted_ms", Json::Num(bs_s.total_ms)),
            ("pairrange_ms", Json::Num(pr_u.total_ms)),
            ("pairrange_sorted_ms", Json::Num(pr_s.total_ms)),
        ]));
    }
    table.print();

    let bs_avg = ratio_bs.iter().sum::<f64>() / ratio_bs.len() as f64;
    let pr_avg = ratio_pr.iter().sum::<f64>() / ratio_pr.len() as f64;
    println!(
        "\n[{}] Sorted input deteriorates BlockSplit by {:.0}% on average (paper: ~80%)",
        if bs_avg > 1.25 { "PASS" } else { "WARN" },
        (bs_avg - 1.0) * 100.0
    );
    println!(
        "[{}] PairRange is unaffected by input order ({:+.1}% average)",
        if (pr_avg - 1.0).abs() < 0.10 {
            "PASS"
        } else {
            "WARN"
        },
        (pr_avg - 1.0) * 100.0
    );
    // Why: count how many partitions the dominant block spans.
    let k_dom = (0..bdm_unsorted.num_blocks())
        .max_by_key(|&k| bdm_unsorted.size(k))
        .unwrap();
    let span_u = (0..M)
        .filter(|&p| bdm_unsorted.size_in(k_dom, p) > 0)
        .count();
    let span_s = (0..M).filter(|&p| bdm_sorted.size_in(k_dom, p) > 0).count();
    println!(
        "    dominant block spans {span_u} partitions unsorted vs {span_s} sorted -> fewer sub-blocks to split into"
    );

    let json = Json::obj([
        ("bench", Json::str("fig11_sorted_input")),
        ("nodes", Json::Num(NODES as f64)),
        ("map_tasks", Json::Num(M as f64)),
        ("blocksplit_sorted_slowdown_avg", Json::Num(bs_avg)),
        ("pairrange_sorted_slowdown_avg", Json::Num(pr_avg)),
        ("dominant_block_span_unsorted", Json::Num(span_u as f64)),
        ("dominant_block_span_sorted", Json::Num(span_s as f64)),
        ("series", Json::Arr(rows)),
    ]);
    write_bench_json("fig11_sorted_input", &json).expect("bench json export");
}
