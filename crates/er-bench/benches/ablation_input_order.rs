//! Ablation — input partitioning order and BlockSplit's splittability.
//!
//! BlockSplit can only split a block into as many sub-blocks as there
//! are partitions containing its entities. This bench compares three
//! input layouts at fixed (m, r): shuffled (the paper's default),
//! sorted by key (Figure 11's adversary), and round-robin (the best
//! case), reporting the resulting maximum reduce load.

use er_bench::table::{fmt_count, TextTable};
use er_bench::{bdm_from_keys, sorted_keys, PAPER_SEED};
use er_core::blocking::BlockKey;
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::analysis::analyze;
use er_loadbalance::pair_range::ranges::RangePolicy;
use er_loadbalance::StrategyKind;

fn round_robin(keys: &[BlockKey], m: usize) -> Vec<BlockKey> {
    let mut out = Vec::with_capacity(keys.len());
    for start in 0..m {
        let mut i = start;
        while i < keys.len() {
            out.push(keys[i].clone());
            i += m;
        }
    }
    out
}

fn main() {
    println!("== Ablation: input order vs BlockSplit balance (m = 20, r = 100) ==\n");
    let shuffled = key_sequence(&ds1_spec(PAPER_SEED));
    let layouts: Vec<(&str, Vec<BlockKey>)> = vec![
        ("shuffled (default)", shuffled.clone()),
        ("sorted by key", sorted_keys(&shuffled)),
        ("round-robin", round_robin(&shuffled, 20)),
    ];
    let mut table = TextTable::new(&["layout", "max reduce load", "imbalance", "map KV pairs"]);
    let mut max_loads = Vec::new();
    for (name, keys) in &layouts {
        let bdm = bdm_from_keys(keys, 20);
        let w = analyze(&bdm, StrategyKind::BlockSplit, 100, RangePolicy::CeilDiv);
        max_loads.push(w.max_comparisons());
        table.row(vec![
            name.to_string(),
            fmt_count(w.max_comparisons()),
            format!("{:.2}", w.imbalance()),
            fmt_count(w.map_output_records),
        ]);
    }
    table.print();
    println!(
        "\n[{}] sorted input inflates BlockSplit's max load by {:.2}x over shuffled",
        if max_loads[1] > max_loads[0] {
            "PASS"
        } else {
            "WARN"
        },
        max_loads[1] as f64 / max_loads[0] as f64
    );
    println!(
        "[{}] round-robin is at least as balanced as shuffled ({} vs {})",
        if max_loads[2] <= max_loads[0] {
            "PASS"
        } else {
            "WARN"
        },
        fmt_count(max_loads[2]),
        fmt_count(max_loads[0])
    );
}
