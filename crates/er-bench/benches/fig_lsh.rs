//! fig_lsh — the third-blocking-family figure: recall vs comparisons
//! for banded-MinHash (LSH) blocking against BlockSplit and Sorted
//! Neighborhood on skew-controlled corpora.
//!
//! Three experiments, all real engine runs:
//!
//! 1. **Skew study** (s ∈ {0, 0.5, 1.0}): on exponential block-size
//!    corpora with injected near-duplicates, prefix blocking's largest
//!    block grows with s and BlockSplit must still *evaluate* every
//!    within-block pair (balanced, but quadratic in the biggest
//!    block). LSH's candidate set depends on *similarity*, not block
//!    membership, so its comparison count stays flat while recall
//!    holds — the headline: at s = 1.0, LSH reaches recall ≥ 0.8 on a
//!    fraction of BlockSplit's comparisons with reduce-task imbalance
//!    ≤ 1.5 (the banded key space rides the same BDM load balancing).
//! 2. **Bands × rows sweep** (a 32-slot signature budget spent as
//!    32×1 … 4×8): the S-curve trade — more bands, higher recall,
//!    more candidates — with the measured recall tracking the
//!    analytic collision probability.
//! 3. **Adaptive ladder**: a candidate budget forces the driver down
//!    the ladder; every round's measured workload and estimated
//!    recall is reported, and only the accepted rung pays for
//!    matching.
//!
//! Exports `BENCH_fig_lsh.json` (validated in CI by
//! `validate_bench_json` against the stored baseline).

use std::sync::Arc;
use std::time::Instant;

use er_bench::table::{fmt_count, fmt_ms, TextTable};
use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use er_core::{Entity, GoldStandard, MatchPair, QualityReport};
use er_datagen::duplicates::{perturb_title, rs_code, EditOps};
use er_datagen::exponential_block_sizes;
use er_datagen::rng::stream_rng;
use er_datagen::vocab::{block_prefix, PRODUCT_NOUNS, PRODUCT_QUALIFIERS};
use er_loadbalance::driver::{run_er, ErConfig};
use er_loadbalance::{Ent, StrategyKind, COMPARISONS};
use er_lsh::{run_lsh, LshConfig, LshOutcome, LshParams};
use er_sn::{run_sorted_neighborhood, SnConfig, SnStrategy};
use mr_engine::input::{partition_evenly, Partitions};

const MAP_TASKS: usize = 4;
const REDUCE_TASKS: usize = 8;
const SAMPLES: usize = 2;
/// The headline banding: 16 bands × 2 rows (32-slot signature).
const HEADLINE: LshParams = LshParams { bands: 16, rows: 2 };

/// A skew-controlled corpus with injected near-duplicates: `n`
/// originals over `b` exponential(s) prefix blocks, every
/// `dup_every`-th entity cloned with ≤ 2 character substitutions that
/// never touch the 4-char protected prefix (block key survives; edit
/// similarity stays ≈ 0.93 on the ~30-char titles, char-trigram
/// Jaccard ≳ 0.6 — inside both the matcher's and the headline
/// banding's catch zone).
fn skewed_dup_corpus(
    n: usize,
    b: usize,
    s: f64,
    dup_every: usize,
    seed: u64,
) -> (Vec<Ent>, GoldStandard) {
    let sizes = exponential_block_sizes(n, b, s);
    let mut entities: Vec<Entity> = Vec::new();
    let mut gold_pairs: Vec<MatchPair> = Vec::new();
    let mut id = 0u64;
    let mut index = 0usize;
    for (k, &size) in sizes.iter().enumerate() {
        let prefix = block_prefix(k);
        for j in 0..size {
            let qualifier = PRODUCT_QUALIFIERS[(index * 7 + j) % PRODUCT_QUALIFIERS.len()];
            let noun = PRODUCT_NOUNS[(index * 3 + k) % PRODUCT_NOUNS.len()];
            let title = format!("{prefix} {qualifier} {noun} {}", rs_code(index));
            let original = Entity::new(id, [("title", title.as_str())]);
            id += 1;
            if index.is_multiple_of(dup_every) {
                let mut rng = stream_rng(seed, index as u64);
                let (dup_title, _) = perturb_title(&mut rng, &title, 2, 4, EditOps::SubstituteOnly);
                let duplicate = Entity::new(id, [("title", dup_title.as_str())]);
                id += 1;
                gold_pairs.push(MatchPair::new(
                    original.entity_ref(),
                    duplicate.entity_ref(),
                ));
                entities.push(duplicate);
            }
            entities.push(original);
            index += 1;
        }
    }
    let gold = GoldStandard::from_pairs(gold_pairs);
    (
        entities.into_iter().map(|e| Arc::new(e) as Ent).collect(),
        gold,
    )
}

fn partitions(entities: &[Ent]) -> Partitions<(), Ent> {
    partition_evenly(
        entities.iter().map(|e| ((), Arc::clone(e))).collect(),
        MAP_TASKS,
    )
}

fn lsh_config(params: LshParams) -> LshConfig {
    LshConfig::new()
        .with_params(params)
        .with_reduce_tasks(REDUCE_TASKS)
        .with_parallelism(MAP_TASKS)
}

fn timed_lsh(input: &Partitions<(), Ent>, config: &LshConfig) -> (LshOutcome, f64) {
    let mut walls = Vec::with_capacity(SAMPLES);
    let mut outcome = None;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        outcome = Some(run_lsh(input.clone(), None, config).expect("LSH run"));
        walls.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (outcome.expect("at least one sample"), median_ms(&walls))
}

fn main() {
    println!("== fig_lsh: banded-MinHash vs BlockSplit vs SN on skewed corpora ==\n");
    const N: usize = 1_500;
    const BLOCKS: usize = 24;
    const DUP_EVERY: usize = 6;

    // ---- 1. skew study --------------------------------------------------
    println!("-- skew study (n = {N} originals + duplicates, b = {BLOCKS} blocks) --\n");
    let mut table = TextTable::new(&[
        "s",
        "LSH cmp",
        "BSplit cmp",
        "SN cmp",
        "LSH recall",
        "BSplit recall",
        "SN recall",
        "LSH imb",
        "LSH ms",
        "BSplit ms",
    ]);
    let mut skew_records = Vec::new();
    let mut headline = None;
    for s in [0.0f64, 0.5, 1.0] {
        let (entities, gold) = skewed_dup_corpus(N, BLOCKS, s, DUP_EVERY, PAPER_SEED);
        let input = partitions(&entities);

        let (lsh, lsh_ms) = timed_lsh(&input, &lsh_config(HEADLINE));
        let lsh_quality = QualityReport::evaluate(&lsh.result, &gold);
        let lsh_imbalance = lsh.match_metrics.reduce_imbalance(COMPARISONS);

        let bs_cfg = ErConfig::new(StrategyKind::BlockSplit)
            .with_reduce_tasks(REDUCE_TASKS)
            .with_parallelism(MAP_TASKS);
        let mut bs_walls = Vec::with_capacity(SAMPLES);
        let mut bs = None;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            bs = Some(run_er(input.clone(), &bs_cfg).expect("BlockSplit run"));
            bs_walls.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let bs = bs.expect("at least one sample");
        let bs_ms = median_ms(&bs_walls);
        let bs_quality = QualityReport::evaluate(&bs.result, &gold);
        let bs_comparisons = bs.total_comparisons();

        let sn_cfg = SnConfig::new(SnStrategy::JobSn)
            .with_window(4)
            .with_partitions(REDUCE_TASKS)
            .with_sample_rate(0.1);
        let sn = run_sorted_neighborhood(input.clone(), &sn_cfg).expect("SN run");
        let sn_quality = QualityReport::evaluate(&sn.result, &gold);

        table.row(vec![
            format!("{s:.1}"),
            fmt_count(lsh.total_comparisons()),
            fmt_count(bs_comparisons),
            fmt_count(sn.total_comparisons()),
            format!("{:.3}", lsh_quality.recall()),
            format!("{:.3}", bs_quality.recall()),
            format!("{:.3}", sn_quality.recall()),
            format!("{lsh_imbalance:.2}"),
            fmt_ms(lsh_ms),
            fmt_ms(bs_ms),
        ]);
        skew_records.push(Json::obj([
            ("skew", Json::Num(s)),
            ("entities", Json::Num(entities.len() as f64)),
            ("lsh_comparisons", Json::Num(lsh.total_comparisons() as f64)),
            ("blocksplit_comparisons", Json::Num(bs_comparisons as f64)),
            ("sn_comparisons", Json::Num(sn.total_comparisons() as f64)),
            ("lsh_recall", Json::Num(lsh_quality.recall())),
            ("lsh_precision", Json::Num(lsh_quality.precision())),
            ("blocksplit_recall", Json::Num(bs_quality.recall())),
            ("sn_recall", Json::Num(sn_quality.recall())),
            ("lsh_imbalance", Json::Num(lsh_imbalance)),
            ("lsh_wall_ms", Json::Num(lsh_ms)),
            ("blocksplit_wall_ms", Json::Num(bs_ms)),
        ]));
        if s == 1.0 {
            headline = Some((
                lsh.total_comparisons(),
                bs_comparisons,
                sn.total_comparisons(),
                lsh_quality.recall(),
                lsh_imbalance,
                lsh_ms,
                bs_ms,
            ));
        }
    }
    table.print();

    let (lsh_cmp, bs_cmp, sn_cmp, lsh_recall, lsh_imb, lsh_ms, bs_ms) =
        headline.expect("s = 1.0 ran");
    assert!(
        lsh_recall >= 0.8,
        "headline criterion: LSH recall {lsh_recall:.3} must be >= 0.8 at s = 1.0"
    );
    assert!(
        lsh_cmp < bs_cmp,
        "headline criterion: LSH ({lsh_cmp}) must beat BlockSplit ({bs_cmp}) on comparisons"
    );
    assert!(
        lsh_imb <= 1.5,
        "headline criterion: LSH reduce imbalance {lsh_imb:.2} must stay <= 1.5"
    );
    println!(
        "\n[PASS] s = 1.0 headline: LSH recall {lsh_recall:.3} at {} comparisons vs \
         BlockSplit's {} ({:.1}x fewer), imbalance {lsh_imb:.2}",
        fmt_count(lsh_cmp),
        fmt_count(bs_cmp),
        bs_cmp as f64 / lsh_cmp as f64
    );

    // ---- 2. bands × rows sweep -----------------------------------------
    println!("\n-- bands x rows sweep (s = 1.0 corpus, 32-slot budget) --\n");
    let (entities, gold) = skewed_dup_corpus(N, BLOCKS, 1.0, DUP_EVERY, PAPER_SEED);
    let input = partitions(&entities);
    let mut table = TextTable::new(&[
        "bands x rows",
        "comparisons",
        "recall",
        "est recall @0.8",
        "imbalance",
    ]);
    let mut sweep_records = Vec::new();
    let mut prev_comparisons = u64::MAX;
    for params in [
        LshParams { bands: 32, rows: 1 },
        LshParams { bands: 16, rows: 2 },
        LshParams { bands: 8, rows: 4 },
        LshParams { bands: 4, rows: 8 },
    ] {
        let (outcome, _) = timed_lsh(&input, &lsh_config(params));
        let quality = QualityReport::evaluate(&outcome.result, &gold);
        let est = params.collision_probability(0.8);
        let imbalance = outcome.match_metrics.reduce_imbalance(COMPARISONS);
        table.row(vec![
            params.to_string(),
            fmt_count(outcome.total_comparisons()),
            format!("{:.3}", quality.recall()),
            format!("{est:.3}"),
            format!("{imbalance:.2}"),
        ]);
        sweep_records.push(Json::obj([
            ("bands", Json::Num(params.bands as f64)),
            ("rows", Json::Num(params.rows as f64)),
            ("comparisons", Json::Num(outcome.total_comparisons() as f64)),
            ("recall", Json::Num(quality.recall())),
            ("est_recall", Json::Num(est)),
            ("imbalance", Json::Num(imbalance)),
        ]));
        assert!(
            outcome.total_comparisons() <= prev_comparisons,
            "tightening rows must not grow the candidate set"
        );
        prev_comparisons = outcome.total_comparisons();
    }
    table.print();
    println!("\n[PASS] candidate workload shrinks monotonically down the ladder");

    // ---- 3. adaptive ladder --------------------------------------------
    println!("\n-- adaptive ladder (budget forces tightening) --\n");
    let ladder = vec![
        LshParams { bands: 32, rows: 1 },
        LshParams { bands: 16, rows: 2 },
        LshParams { bands: 8, rows: 4 },
        LshParams { bands: 4, rows: 8 },
    ];
    // A budget between the tightest and widest rungs' workloads: the
    // driver must walk down until a rung fits.
    let budget = prev_comparisons.max(1) * 4;
    let adaptive_cfg = LshConfig::new()
        .with_ladder(ladder)
        .with_candidate_budget(Some(budget))
        .with_reduce_tasks(REDUCE_TASKS)
        .with_parallelism(MAP_TASKS);
    let adaptive = run_lsh(input.clone(), None, &adaptive_cfg).expect("adaptive run");
    let mut table = TextTable::new(&[
        "round",
        "bands x rows",
        "candidates",
        "est recall",
        "accepted",
    ]);
    let mut round_records = Vec::new();
    for (i, round) in adaptive.rounds.iter().enumerate() {
        table.row(vec![
            (i + 1).to_string(),
            round.params.to_string(),
            fmt_count(round.candidate_pairs),
            format!("{:.3}", round.est_recall),
            if round.accepted { "yes" } else { "no" }.to_string(),
        ]);
        round_records.push(Json::obj([
            ("bands", Json::Num(round.params.bands as f64)),
            ("rows", Json::Num(round.params.rows as f64)),
            ("candidate_pairs", Json::Num(round.candidate_pairs as f64)),
            ("est_recall", Json::Num(round.est_recall)),
            (
                "accepted",
                Json::Num(if round.accepted { 1.0 } else { 0.0 }),
            ),
        ]));
    }
    table.print();
    assert!(
        adaptive.rounds.last().expect("rounds reported").accepted,
        "the final measured round is the accepted one"
    );
    assert!(
        adaptive.rounds.len() > 1,
        "the budget {budget} must force at least one tightening step"
    );
    println!(
        "\n[PASS] ladder tightened over {} rounds to {} within budget {}",
        adaptive.rounds.len(),
        adaptive.params,
        fmt_count(budget)
    );

    let json = Json::obj([
        ("bench", Json::str("fig_lsh")),
        ("originals", Json::Num(N as f64)),
        ("blocks", Json::Num(BLOCKS as f64)),
        ("map_tasks", Json::Num(MAP_TASKS as f64)),
        ("reduce_tasks", Json::Num(REDUCE_TASKS as f64)),
        // Headline (s = 1.0) metrics as top-level numerics so the
        // drift guard pins them: counts/recall exactly, walls within
        // the noise band.
        ("lsh_comparisons_s1", Json::Num(lsh_cmp as f64)),
        ("blocksplit_comparisons_s1", Json::Num(bs_cmp as f64)),
        ("sn_comparisons_s1", Json::Num(sn_cmp as f64)),
        ("lsh_recall_s1", Json::Num(lsh_recall)),
        ("lsh_imbalance_s1", Json::Num(lsh_imb)),
        ("adaptive_rounds", Json::Num(adaptive.rounds.len() as f64)),
        ("accepted_bands", Json::Num(adaptive.params.bands as f64)),
        ("lsh_wall_ms", Json::Num(lsh_ms)),
        ("blocksplit_wall_ms", Json::Num(bs_ms)),
        ("skew_study", Json::Arr(skew_records)),
        ("band_sweep", Json::Arr(sweep_records)),
        ("adaptive_ladder", Json::Arr(round_records)),
    ]);
    let path = write_bench_json("fig_lsh", &json).expect("write export");
    println!("\nwrote {}", path.display());
}
