//! Ablation — PairRange's two range formulas.
//!
//! The paper states Eq. (2) `⌊r·p/P⌋` in the text but implements
//! `⌊p/⌈P/r⌉⌋` in Algorithm 2. They coincide when `r | P` but differ
//! otherwise: the ceil-div variant starves trailing ranges (the last
//! task can receive almost nothing, and with `P < r` whole tasks idle)
//! while the proportional variant never deviates by more than one
//! pair. This bench quantifies the worst-case and average imbalance of
//! both across a sweep of (P, r).

use er_bench::table::TextTable;
use er_loadbalance::pair_range::ranges::{RangeIndexer, RangePolicy};

fn stats(p: u64, r: usize, policy: RangePolicy) -> (f64, usize) {
    let idx = RangeIndexer::new(p, r, policy);
    let sizes: Vec<u64> = (0..r as u64).map(|k| idx.range_size(k)).collect();
    let max = *sizes.iter().max().unwrap() as f64;
    let idle = sizes.iter().filter(|&&s| s == 0).count();
    let mean = p as f64 / r as f64;
    (if mean == 0.0 { 1.0 } else { max / mean }, idle)
}

fn main() {
    println!("== Ablation: Algorithm-2 range formula vs Equation (2) ==\n");
    let mut table = TextTable::new(&[
        "P",
        "r",
        "ceil-div max/mean",
        "ceil-div idle tasks",
        "prop max/mean",
        "prop idle tasks",
    ]);
    let mut worst_ceil: f64 = 1.0;
    let mut worst_prop: f64 = 1.0;
    let cases: Vec<(u64, usize)> = vec![
        (20, 3),
        (10, 4),
        (100, 13),
        (1_000, 160),
        (56_430_000, 160),
        (56_430_000, 1_000),
        (101, 100),
        (110, 100),
        (199, 100),
    ];
    let mut worst_idle_ceil = 0usize;
    let mut worst_idle_prop = 0usize;
    for &(p, r) in &cases {
        let (c, ci) = stats(p, r, RangePolicy::CeilDiv);
        let (q, qi) = stats(p, r, RangePolicy::Proportional);
        worst_ceil = worst_ceil.max(c);
        worst_prop = worst_prop.max(q);
        worst_idle_ceil = worst_idle_ceil.max(ci);
        worst_idle_prop = worst_idle_prop.max(qi);
        table.row(vec![
            p.to_string(),
            r.to_string(),
            format!("{c:.4}"),
            ci.to_string(),
            format!("{q:.4}"),
            qi.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n[{}] max/mean is identical (max size = ceil(P/r) either way), but ceil-div",
        if worst_prop <= worst_ceil {
            "PASS"
        } else {
            "WARN"
        },
    );
    println!(
        "[{}] ceil-div leaves up to {} reduce tasks completely idle where proportional leaves {}",
        if worst_idle_prop <= worst_idle_ceil {
            "PASS"
        } else {
            "WARN"
        },
        worst_idle_ceil,
        worst_idle_prop
    );
    println!("    conclusion: the formulas only diverge when P is within a small multiple");
    println!("    of r (idle trailing tasks); at the paper's workloads (P >> r) they");
    println!("    are equivalent, which is why the paper can state both interchangeably.");
}
