//! Concurrent multi-tenant resolve — aggregate throughput and
//! per-resolve latency of N tenant threads sharing one `Runtime`,
//! against the same workload resolved back to back.
//!
//! Four mixed scenario shapes (BlockSplit dedup, RepSN, PairRange
//! dedup, JobSN) play the tenants; each tenant count in {1, 2, 4, 8}
//! runs under FIFO and fair-share scheduling on a fixed-size pool.
//! Every concurrent outcome is hard-asserted byte-identical (pairs
//! *and* score bits) to a sequential parallelism-1 reference — the
//! scheduler may only change wall time, never output.
//!
//! `BENCH_concurrent_resolve.json` records, per (tenants, policy):
//! median aggregate wall, p50/p95 per-resolve latency, plus the
//! 4-tenant concurrent-vs-back-to-back speedup. The ≥1.3× aggregate
//! throughput goal needs real cores; on a single-CPU host the verdict
//! degrades to WARN rather than failing.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use dedupe_mr::prelude::*;
use er_bench::{median_ms, write_bench_json, Json, PAPER_SEED};
use mr_engine::pool::SchedulingPolicy;

const TENANT_COUNTS: [usize; 4] = [1, 2, 4, 8];
const POOL_PARALLELISM: usize = 4;
const ROUNDS: usize = 3;

const POLICIES: [SchedulingPolicy; 2] = [SchedulingPolicy::Fifo, SchedulingPolicy::FairShare];

fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = er_datagen::generate_products(&er_datagen::ds1_spec(PAPER_SEED).scaled(0.005));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

/// The tenant mix: four distinct workflow shapes so concurrent stages
/// of different pipelines interleave on the shared pool.
fn scenarios() -> Vec<(&'static str, Scenario, Partitions<(), Ent>)> {
    vec![
        (
            "block-split",
            Scenario::Dedup {
                strategy: StrategyKind::BlockSplit,
            },
            corpus(4),
        ),
        (
            "repsn",
            Scenario::sorted_neighborhood(SnStrategy::RepSn),
            corpus(4),
        ),
        (
            "pair-range",
            Scenario::Dedup {
                strategy: StrategyKind::PairRange,
            },
            corpus(3),
        ),
        (
            "jobsn",
            Scenario::sorted_neighborhood(SnStrategy::JobSn),
            corpus(4),
        ),
    ]
}

fn resolver(runtime: &Runtime) -> Resolver<'_> {
    Resolver::new(runtime).with_window(4).with_partitions(3)
}

fn result_bits(result: &MatchResult) -> Vec<(MatchPair, u64)> {
    result.iter().map(|(p, s)| (p, s.to_bits())).collect()
}

/// q-th percentile of a latency sample (nearest-rank).
fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ConfigResult {
    tenants: usize,
    policy: &'static str,
    wall_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
}

fn main() {
    println!("== Concurrent multi-tenant resolve: throughput vs back-to-back ==\n");
    let workload = scenarios();

    // Sequential reference: parallelism-1 outputs are the byte-exact
    // contract every concurrent run must reproduce.
    let reference_rt = Runtime::new(RuntimeConfig::new().with_parallelism(1));
    let reference_resolver = resolver(&reference_rt);
    let references: Vec<Vec<(MatchPair, u64)>> = workload
        .iter()
        .map(|(_, scenario, input)| {
            result_bits(
                &reference_resolver
                    .resolve(scenario, input.clone())
                    .unwrap()
                    .result,
            )
        })
        .collect();

    // Back-to-back baseline: the 4-tenant workload resolved
    // sequentially on a pool of the same size.
    let mut seq_walls = Vec::with_capacity(ROUNDS);
    {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(POOL_PARALLELISM));
        let session = resolver(&runtime);
        for _ in 0..ROUNDS {
            let start = Instant::now();
            for (i, (_, scenario, input)) in workload.iter().enumerate() {
                let outcome = session.resolve(scenario, input.clone()).unwrap();
                assert_eq!(result_bits(&outcome.result), references[i], "sequential");
            }
            seq_walls.push(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    let seq_wall_ms = median_ms(&seq_walls);
    println!(
        "back-to-back, {} tenants on {} workers: {seq_wall_ms:.2} ms median aggregate wall\n",
        workload.len(),
        POOL_PARALLELISM
    );

    let mut results: Vec<ConfigResult> = Vec::new();
    for policy in POLICIES {
        for tenants in TENANT_COUNTS {
            let runtime = Runtime::new(
                RuntimeConfig::new()
                    .with_parallelism(POOL_PARALLELISM)
                    .with_scheduling_policy(policy),
            );
            let base = resolver(&runtime);
            let mut walls = Vec::with_capacity(ROUNDS);
            let mut latencies: Vec<f64> = Vec::new();
            for _ in 0..ROUNDS {
                let start = Instant::now();
                let round: Vec<(usize, f64)> = thread::scope(|scope| {
                    let handles: Vec<_> = (0..tenants)
                        .map(|t| {
                            let i = t % workload.len();
                            let (name, scenario, input) = &workload[i];
                            let session = base.clone().with_tenant(format!("{name}-{t}"));
                            let input = input.clone();
                            scope.spawn(move || {
                                let begin = Instant::now();
                                let outcome = session.resolve(scenario, input).unwrap();
                                let ms = begin.elapsed().as_secs_f64() * 1e3;
                                (i, ms, result_bits(&outcome.result))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            let (i, ms, bits) = h.join().expect("tenant thread");
                            assert_eq!(
                                bits,
                                references[i],
                                "t={tenants} {}: output must be byte-identical",
                                policy.name()
                            );
                            (i, ms)
                        })
                        .collect()
                });
                walls.push(start.elapsed().as_secs_f64() * 1e3);
                latencies.extend(round.into_iter().map(|(_, ms)| ms));
            }
            let stats = runtime.pool_stats();
            assert_eq!(stats.queue_depth, 0, "queue drained");
            assert!(stats.per_tenant_inflight.is_empty(), "no tenant inflight");
            let r = ConfigResult {
                tenants,
                policy: policy.name(),
                wall_ms: median_ms(&walls),
                p50_ms: percentile_ms(&latencies, 0.50),
                p95_ms: percentile_ms(&latencies, 0.95),
            };
            println!(
                "{:>10}  t={tenants}  wall {:8.2} ms  p50 {:8.2} ms  p95 {:8.2} ms",
                r.policy, r.wall_ms, r.p50_ms, r.p95_ms
            );
            results.push(r);
        }
    }

    // Aggregate throughput verdict: 4 concurrent tenants vs the same
    // 4 resolves back to back on an equal pool.
    let conc_wall_ms = results
        .iter()
        .filter(|r| r.tenants == 4)
        .map(|r| r.wall_ms)
        .fold(f64::INFINITY, f64::min);
    let speedup = seq_wall_ms / conc_wall_ms;
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n4-tenant aggregate speedup vs back-to-back: {speedup:.2}x ({cores} host cores visible)"
    );
    let verdict = if speedup >= 1.3 {
        "PASS concurrent scheduling beats back-to-back by >= 1.3x".to_string()
    } else if cores < 2 {
        format!(
            "WARN single-core host: measured {speedup:.2}x; the >= 1.3x \
             aggregate-throughput goal needs real cores (outputs verified byte-identical)"
        )
    } else {
        format!("WARN aggregate speedup {speedup:.2}x below the 1.3x goal — investigate")
    };
    println!("{verdict}");

    let mut members: Vec<(&str, Json)> = vec![
        ("bench", Json::str("concurrent_resolve")),
        ("pool_parallelism", Json::Num(POOL_PARALLELISM as f64)),
        ("rounds", Json::Num(ROUNDS as f64)),
        ("tenant_mix", Json::Num(workload.len() as f64)),
        ("sequential_wall_4_ms", Json::Num(seq_wall_ms)),
        (
            "speedup_4_tenants_vs_sequential_ms_ratio",
            Json::Num(speedup),
        ),
    ];
    let mut keys: Vec<String> = Vec::new();
    for r in &results {
        keys.push(format!("wall_ms_t{}_{}", r.tenants, r.policy));
        keys.push(format!("p50_ms_t{}_{}", r.tenants, r.policy));
        keys.push(format!("p95_ms_t{}_{}", r.tenants, r.policy));
    }
    for (r, chunk) in results.iter().zip(keys.chunks(3)) {
        members.push((chunk[0].as_str(), Json::Num(r.wall_ms)));
        members.push((chunk[1].as_str(), Json::Num(r.p50_ms)));
        members.push((chunk[2].as_str(), Json::Num(r.p95_ms)));
    }
    let json = Json::obj(members);
    write_bench_json("concurrent_resolve", &json).expect("bench json export");
}
