//! Criterion micro-benchmarks for the similarity kernels — the inner
//! loop of every reduce task, and the constant the cluster simulator
//! calibrates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use er_core::similarity::{
    levenshtein_distance, levenshtein_within, Jaccard, JaroWinkler, NGram,
    NormalizedLevenshtein, Similarity,
};

const A: &str = "babpro k3vd9qmzx21ab camera";
const B: &str = "babpro k3vd9qmzx21ac camera";
const C: &str = "zzmax w8jf02qrty45cd printer";

fn bench_similarity(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    g.bench_function("levenshtein/near", |b| {
        b.iter(|| levenshtein_distance(black_box(A), black_box(B)))
    });
    g.bench_function("levenshtein/far", |b| {
        b.iter(|| levenshtein_distance(black_box(A), black_box(C)))
    });
    g.bench_function("levenshtein_within/k5", |b| {
        b.iter(|| levenshtein_within(black_box(A), black_box(C), 5))
    });
    g.bench_function("normalized_levenshtein", |b| {
        let s = NormalizedLevenshtein;
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.bench_function("jaro_winkler", |b| {
        let s = JaroWinkler::default();
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.bench_function("jaccard", |b| {
        let s = Jaccard;
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.bench_function("trigram", |b| {
        let s = NGram::trigram();
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_similarity
}
criterion_main!(benches);
