//! Criterion micro-benchmarks for the similarity kernels — the inner
//! loop of every reduce task, and the constant the cluster simulator
//! calibrates.
//!
//! The `blocked_matching` group measures the tentpole win: all-pairs
//! matching over one block through the naive per-pair string path vs
//! the prepare-once path (`Matcher::prepare` + `score_prepared`).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use er_core::similarity::{
    levenshtein_distance, levenshtein_within, Jaccard, JaroWinkler, MongeElkan, NGram,
    NormalizedLevenshtein, Similarity,
};
use er_core::{Entity, MatchRule, Matcher};

const A: &str = "babpro k3vd9qmzx21ab camera";
const B: &str = "babpro k3vd9qmzx21ac camera";
const C: &str = "zzmax w8jf02qrty45cd printer";

/// One synthetic block of near-duplicate product titles.
fn block(size: usize) -> Vec<Entity> {
    (0..size)
        .map(|i| {
            Entity::new(
                i as u64,
                [(
                    "title",
                    format!("babpro k3vd9qmzx21ab camera kit rev{:02}", i % 17).as_str(),
                )],
            )
        })
        .collect()
}

fn all_pairs_naive(matcher: &Matcher, entities: &[Entity]) -> usize {
    let mut matches = 0;
    for i in 0..entities.len() {
        for j in (i + 1)..entities.len() {
            if matcher.matches(&entities[i], &entities[j]).is_some() {
                matches += 1;
            }
        }
    }
    matches
}

fn all_pairs_prepared(matcher: &Matcher, entities: &[Entity]) -> usize {
    let prepared: Vec<_> = entities.iter().map(|e| matcher.prepare(e)).collect();
    let mut matches = 0;
    for i in 0..prepared.len() {
        for j in (i + 1)..prepared.len() {
            if matcher
                .matches_prepared(&prepared[i], &prepared[j])
                .is_some()
            {
                matches += 1;
            }
        }
    }
    matches
}

fn bench_blocked_matching(c: &mut Criterion) {
    const BLOCK: usize = 48;
    let entities = block(BLOCK);
    let configs: Vec<(&str, Matcher)> = vec![
        (
            "levenshtein",
            Matcher::new(
                vec![MatchRule::new("title", Arc::new(NormalizedLevenshtein))],
                0.8,
            ),
        ),
        (
            "trigram",
            Matcher::new(
                vec![MatchRule::new("title", Arc::new(NGram::trigram()))],
                0.8,
            ),
        ),
        (
            "jaccard",
            Matcher::new(vec![MatchRule::new("title", Arc::new(Jaccard))], 0.5),
        ),
        (
            "monge-elkan",
            Matcher::new(
                vec![MatchRule::new("title", Arc::new(MongeElkan::default()))],
                0.8,
            ),
        ),
    ];
    let mut g = c.benchmark_group(format!("blocked_matching_b{BLOCK}"));
    for (name, matcher) in &configs {
        // Sanity: both paths must agree before we time them.
        assert_eq!(
            all_pairs_naive(matcher, &entities),
            all_pairs_prepared(matcher, &entities),
            "{name}: prepared path diverged"
        );
        g.bench_function(format!("{name}/naive"), |b| {
            b.iter(|| all_pairs_naive(black_box(matcher), black_box(&entities)))
        });
        g.bench_function(format!("{name}/prepared"), |b| {
            b.iter(|| all_pairs_prepared(black_box(matcher), black_box(&entities)))
        });
    }
    g.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    g.bench_function("levenshtein/near", |b| {
        b.iter(|| levenshtein_distance(black_box(A), black_box(B)))
    });
    g.bench_function("levenshtein/far", |b| {
        b.iter(|| levenshtein_distance(black_box(A), black_box(C)))
    });
    g.bench_function("levenshtein_within/k5", |b| {
        b.iter(|| levenshtein_within(black_box(A), black_box(C), 5))
    });
    g.bench_function("normalized_levenshtein", |b| {
        let s = NormalizedLevenshtein;
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.bench_function("jaro_winkler", |b| {
        let s = JaroWinkler::default();
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.bench_function("jaccard", |b| {
        let s = Jaccard;
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.bench_function("trigram", |b| {
        let s = NGram::trigram();
        b.iter(|| s.sim(black_box(A), black_box(B)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_similarity, bench_blocked_matching
}
criterion_main!(benches);
