//! CI guard for the bench JSON exports: re-parses every
//! `BENCH_*.json` (paths given as arguments, or everything in
//! [`er_bench::bench_json_dir`]) with the strict in-tree parser and
//! checks the minimal schema every export shares — a top-level object
//! with a `"bench"` string member and at least one numeric metric.
//! Exits non-zero on the first violation, so a format regression fails
//! the pipeline instead of rotting quietly.

use std::path::PathBuf;
use std::process::ExitCode;

use er_bench::{bench_json_dir, Json};

fn validate(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let bench = value
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing string member \"bench\"")?
        .to_string();
    let members = match &value {
        Json::Obj(members) => members,
        _ => return Err("top-level value must be an object".into()),
    };
    let metrics = members
        .iter()
        .filter(|(_, v)| matches!(v, Json::Num(n) if n.is_finite()))
        .count();
    if metrics == 0 {
        return Err("no numeric metric members".into());
    }
    Ok(format!("{bench}: {metrics} numeric metrics"))
}

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if paths.is_empty() {
        let dir = bench_json_dir();
        match std::fs::read_dir(&dir) {
            Ok(entries) => {
                paths = entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                    })
                    .collect();
                paths.sort();
            }
            Err(e) => {
                eprintln!("cannot read {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if paths.is_empty() {
        eprintln!("no BENCH_*.json files to validate");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match validate(path) {
            Ok(summary) => println!("OK   {} — {summary}", path.display()),
            Err(err) => {
                eprintln!("FAIL {} — {err}", path.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
