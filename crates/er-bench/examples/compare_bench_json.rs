//! Cross-PR perf-trail guard: diffs fresh `BENCH_*.json` exports
//! against the baselines stored in `crates/er-bench/benches/baselines/`.
//!
//! Two classes of metric, told apart by name:
//!
//! * **timing** (name contains `_ms`) — noisy by nature; compared
//!   within a relative
//!   noise band (`--noise`, default ±50% of the baseline, generous
//!   because CI machines differ from the baseline machine);
//! * **everything else** (record counts, peak gauges, ratios) —
//!   deterministic for a given corpus, so any drift is a real
//!   behaviour change and is reported exactly.
//!
//! Exports without a stored baseline are listed as `NEW` (success —
//! check a baseline in to start tracking them); baselines without a
//! fresh export are listed as `STALE`. Exits non-zero on any metric
//! outside its band, so the CI step (wired non-blocking) surfaces
//! regressions without gating merges on machine noise.
//!
//! Usage: `cargo run -p er-bench --example compare_bench_json --
//! [--baseline-dir DIR] [--noise FRACTION] [EXPORT.json ...]`

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use er_bench::{bench_json_dir, Json};

/// Default relative band for `*_ms` metrics.
const DEFAULT_NOISE: f64 = 0.5;

fn numeric_metrics(value: &Json) -> Vec<(String, f64)> {
    match value {
        Json::Obj(members) => members
            .iter()
            .filter_map(|(k, v)| match v {
                Json::Num(n) if n.is_finite() => Some((k.clone(), *n)),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

fn load(path: &Path) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("unreadable {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("invalid JSON in {}: {e}", path.display()))
}

/// Compares one export against its baseline; returns the per-metric
/// verdict lines and whether all metrics stayed in band.
fn compare(current: &Json, baseline: &Json, noise: f64) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut ok = true;
    let base_metrics = numeric_metrics(baseline);
    let current_metrics = numeric_metrics(current);
    for (name, base) in &base_metrics {
        let Some((_, cur)) = current_metrics.iter().find(|(k, _)| k == name) else {
            lines.push(format!("  MISSING {name} (baseline {base})"));
            ok = false;
            continue;
        };
        if name.contains("_ms") {
            let band = noise * base.abs().max(1e-9);
            let delta = cur - base;
            if delta.abs() <= band {
                lines.push(format!(
                    "  ok      {name}: {cur:.3} vs {base:.3} ({:+.1}%)",
                    100.0 * delta / base.abs().max(1e-9)
                ));
            } else {
                lines.push(format!(
                    "  DRIFT   {name}: {cur:.3} vs {base:.3} ({:+.1}%, band ±{:.0}%)",
                    100.0 * delta / base.abs().max(1e-9),
                    100.0 * noise
                ));
                ok = false;
            }
        } else if cur == base {
            lines.push(format!("  ok      {name}: {cur}"));
        } else {
            lines.push(format!(
                "  CHANGED {name}: {cur} vs baseline {base} (deterministic metric)"
            ));
            ok = false;
        }
    }
    for (name, cur) in &current_metrics {
        if !base_metrics.iter().any(|(k, _)| k == name) {
            lines.push(format!("  new     {name}: {cur} (not in baseline)"));
        }
    }
    (lines, ok)
}

fn default_baseline_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("benches")
        .join("baselines")
}

fn is_bench_export(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
}

fn main() -> ExitCode {
    let mut baseline_dir = default_baseline_dir();
    let mut noise = DEFAULT_NOISE;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline-dir" => match args.next() {
                Some(dir) => baseline_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--baseline-dir needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--noise" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => noise = v,
                _ => {
                    eprintln!("--noise needs a non-negative fraction");
                    return ExitCode::FAILURE;
                }
            },
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    if paths.is_empty() {
        if let Ok(entries) = std::fs::read_dir(bench_json_dir()) {
            paths = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| is_bench_export(p))
                .collect();
            paths.sort();
        }
    }
    if paths.is_empty() {
        eprintln!("no BENCH_*.json exports to compare");
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    let mut compared = Vec::new();
    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let baseline_path = baseline_dir.join(name);
        if !baseline_path.exists() {
            println!("NEW  {name} — no stored baseline");
            continue;
        }
        compared.push(name.to_string());
        match (load(path), load(&baseline_path)) {
            (Ok(current), Ok(baseline)) => {
                let (lines, in_band) = compare(&current, &baseline, noise);
                println!("{} {name}", if in_band { "OK  " } else { "FAIL" });
                for line in lines {
                    println!("{line}");
                }
                ok &= in_band;
            }
            (Err(e), _) | (_, Err(e)) => {
                println!("FAIL {name} — {e}");
                ok = false;
            }
        }
    }
    // Baselines whose bench no longer exported anything this run.
    if let Ok(entries) = std::fs::read_dir(&baseline_dir) {
        for entry in entries.filter_map(Result::ok) {
            let p = entry.path();
            if is_bench_export(&p) {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("?");
                if !compared.iter().any(|c| c == name)
                    && !paths
                        .iter()
                        .any(|e| e.file_name().and_then(|n| n.to_str()) == Some(name))
                {
                    println!("STALE {name} — baseline stored but not exported this run");
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
