//! From per-task workloads to simulated job and workflow times.

use crate::cluster::ClusterConfig;
use crate::cost::CostModel;
use crate::scheduler::simulate_phase;

/// One MR job's task costs, ready for scheduling.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Job label (for reports).
    pub name: String,
    /// Map task costs (ms), in submission order.
    pub map_tasks_ms: Vec<f64>,
    /// Reduce task costs (ms), in submission order.
    pub reduce_tasks_ms: Vec<f64>,
}

impl SimJob {
    /// Builds a matching-job workload: `m` map tasks evenly sharing
    /// `entities` inputs and `map_output` emissions, and one reduce
    /// task per `(kv_in, comparisons)` entry.
    pub fn matching(
        name: impl Into<String>,
        cost: &CostModel,
        m: usize,
        entities: u64,
        map_output: u64,
        reduce_tasks: &[(u64, u64)],
    ) -> Self {
        assert!(m > 0, "need at least one map task");
        let per_map_records = entities / m as u64;
        let per_map_emit = map_output / m as u64;
        Self {
            name: name.into(),
            map_tasks_ms: (0..m)
                .map(|_| cost.map_task_ms(per_map_records, per_map_emit))
                .collect(),
            reduce_tasks_ms: reduce_tasks
                .iter()
                .enumerate()
                .map(|(i, &(kv_in, comparisons))| cost.reduce_task_ms(i, kv_in, comparisons))
                .collect(),
        }
    }

    /// Builds the BDM job's workload (Algorithm 3): scan + one count
    /// emission per entity, `r` near-idle reduce tasks summing counts.
    pub fn bdm(cost: &CostModel, m: usize, r: usize, entities: u64) -> Self {
        assert!(m > 0 && r > 0);
        let per_map = entities / m as u64;
        // The side output doubles the per-record work; counts shuffle
        // to reducers (combiner keeps this small — one record per
        // (block, partition), bounded above by entities).
        let per_reduce_kv = (entities / r as u64).min(50_000);
        Self {
            name: "bdm".into(),
            map_tasks_ms: (0..m)
                .map(|_| cost.map_task_ms(per_map, 2 * per_map))
                .collect(),
            reduce_tasks_ms: (0..r)
                .map(|i| cost.reduce_task_ms(i, per_reduce_kv, 0))
                .collect(),
        }
    }
}

/// Simulated timings of a job sequence on one cluster.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-job `(name, duration_ms)` including per-job overhead.
    pub jobs_ms: Vec<(String, f64)>,
    /// End-to-end duration (ms).
    pub total_ms: f64,
}

impl SimOutcome {
    /// Total in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ms / 1e3
    }
}

/// Runs `jobs` sequentially (the ER workflow's Job 1 then Job 2) on
/// `cluster` under `cost`'s per-job overhead.
pub fn simulate_jobs(jobs: &[SimJob], cluster: &ClusterConfig, cost: &CostModel) -> SimOutcome {
    let mut jobs_ms = Vec::with_capacity(jobs.len());
    let mut total = 0.0;
    for job in jobs {
        let map_phase = simulate_phase(&job.map_tasks_ms, cluster.map_slots());
        let reduce_phase = simulate_phase(&job.reduce_tasks_ms, cluster.reduce_slots());
        let duration = cost.job_overhead_ms + map_phase.duration_ms + reduce_phase.duration_ms;
        jobs_ms.push((job.name.clone(), duration));
        total += duration;
    }
    SimOutcome {
        jobs_ms,
        total_ms: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn bdm_job_lands_near_the_papers_35s() {
        // DS1: 114k entities, n = 10, m = 20, r = 100. The paper
        // reports ~35 s of BDM overhead; defaults should land in the
        // same regime (10-70 s), dominated by the per-job constant
        // plus 5 reduce waves of task startup.
        let job = SimJob::bdm(&cost(), 20, 100, 114_000);
        let out = simulate_jobs(&[job], &ClusterConfig::paper(10), &cost());
        let secs = out.total_secs();
        assert!(
            (10.0..70.0).contains(&secs),
            "BDM job simulated at {secs:.1}s"
        );
    }

    #[test]
    fn skewed_reduce_load_dominates_makespan() {
        let c = cost();
        // One reduce task with 100M comparisons vs 9 idle ones.
        let skewed = SimJob::matching(
            "skewed",
            &c,
            2,
            1000,
            1000,
            &[
                (1000, 100_000_000),
                (0, 0),
                (0, 0),
                (0, 0),
                (0, 0),
                (0, 0),
                (0, 0),
                (0, 0),
                (0, 0),
                (0, 0),
            ],
        );
        let balanced_tasks: Vec<(u64, u64)> = (0..10).map(|_| (100, 10_000_000)).collect();
        let balanced = SimJob::matching("balanced", &c, 2, 1000, 1000, &balanced_tasks);
        let cluster = ClusterConfig::paper(5); // 10 reduce slots
        let t_skewed = simulate_jobs(&[skewed], &cluster, &c).total_ms;
        let t_balanced = simulate_jobs(&[balanced], &cluster, &c).total_ms;
        assert!(
            t_skewed > t_balanced * 3.0,
            "skew must dominate: {t_skewed:.0} vs {t_balanced:.0}"
        );
    }

    #[test]
    fn more_nodes_shrink_balanced_workloads() {
        let c = cost();
        let tasks: Vec<(u64, u64)> = (0..100).map(|_| (1000, 2_000_000)).collect();
        let job = |m: usize| SimJob::matching("m", &c, m, 100_000, 200_000, &tasks);
        let t1 = simulate_jobs(&[job(2)], &ClusterConfig::paper(1), &c).total_ms;
        let t10 = simulate_jobs(&[job(20)], &ClusterConfig::paper(10), &c).total_ms;
        assert!(t10 < t1 / 5.0, "t1={t1:.0} t10={t10:.0}");
    }

    #[test]
    fn job_overhead_is_charged_per_job() {
        let c = cost();
        let job = SimJob::matching("j", &c, 1, 0, 0, &[(0, 0)]);
        let one = simulate_jobs(std::slice::from_ref(&job), &ClusterConfig::paper(1), &c).total_ms;
        let two = simulate_jobs(&[job.clone(), job], &ClusterConfig::paper(1), &c).total_ms;
        assert!((two - 2.0 * one).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one map task")]
    fn zero_map_tasks_rejected() {
        let _ = SimJob::matching("bad", &cost(), 0, 10, 10, &[(1, 1)]);
    }
}
