//! Human-readable simulation reports.

use crate::scheduler::PhaseResult;
use crate::workload::SimOutcome;

/// Formats a duration in milliseconds compactly.
pub fn fmt_duration(ms: f64) -> String {
    if ms >= 3_600_000.0 {
        format!("{:.1}h", ms / 3_600_000.0)
    } else if ms >= 60_000.0 {
        format!("{:.1}min", ms / 60_000.0)
    } else if ms >= 1_000.0 {
        format!("{:.1}s", ms / 1_000.0)
    } else {
        format!("{ms:.0}ms")
    }
}

/// One line per job plus the total — the shape of a `hadoop job`
/// summary.
pub fn render_outcome(outcome: &SimOutcome) -> String {
    let mut out = String::new();
    for (name, ms) in &outcome.jobs_ms {
        out.push_str(&format!("  job {name:<16} {}\n", fmt_duration(*ms)));
    }
    out.push_str(&format!(
        "  total{:<13} {}\n",
        "",
        fmt_duration(outcome.total_ms)
    ));
    out
}

/// Summarizes a phase: duration, slots, utilization.
pub fn render_phase(label: &str, phase: &PhaseResult) -> String {
    format!(
        "{label}: {} on {} slots, {:.0}% utilized",
        fmt_duration(phase.duration_ms),
        phase.slots,
        100.0 * phase.utilization()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::simulate_phase;

    #[test]
    fn durations_format_readably() {
        assert_eq!(fmt_duration(500.0), "500ms");
        assert_eq!(fmt_duration(2_000.0), "2.0s");
        assert_eq!(fmt_duration(120_000.0), "2.0min");
        assert_eq!(fmt_duration(7_200_000.0), "2.0h");
    }

    #[test]
    fn outcome_report_lists_jobs_and_total() {
        let outcome = SimOutcome {
            jobs_ms: vec![("bdm".into(), 35_000.0), ("match".into(), 125_000.0)],
            total_ms: 160_000.0,
        };
        let report = render_outcome(&outcome);
        assert!(report.contains("bdm"));
        assert!(report.contains("35.0s"));
        assert!(report.contains("2.7min"));
    }

    #[test]
    fn phase_report_shows_utilization() {
        let phase = simulate_phase(&[10.0, 10.0, 10.0, 10.0], 4);
        let report = render_phase("reduce", &phase);
        assert!(report.contains("100% utilized"), "{report}");
        assert!(report.contains("4 slots"));
    }
}
