//! Event-driven list scheduling of one task phase.
//!
//! Hadoop's JobTracker hands the next queued task to whichever slot
//! frees first ("After a task has finished, another task is
//! automatically assigned to the released process"). For a fixed task
//! order that is exactly earliest-free-slot list scheduling, simulated
//! here with a binary heap of slot free-times.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of scheduling one phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Wall-clock duration of the phase (ms).
    pub duration_ms: f64,
    /// Finish time of each task (ms from phase start), in task order.
    pub task_finish_ms: Vec<f64>,
    /// Total busy time across all slots (sum of task costs, ms).
    pub busy_ms: f64,
    /// Number of slots the phase ran on.
    pub slots: usize,
}

impl PhaseResult {
    /// Fraction of slot-time spent working (1.0 = all slots busy for
    /// the whole phase). Idle slots are exactly the waste the paper's
    /// strategies eliminate — "idle but instantiated nodes may produce
    /// unnecessary costs".
    pub fn utilization(&self) -> f64 {
        if self.duration_ms <= 0.0 {
            return 1.0;
        }
        (self.busy_ms / (self.slots as f64 * self.duration_ms)).clamp(0.0, 1.0)
    }
}

/// Schedules `task_costs_ms` (in submission order) onto `slots`
/// parallel slots; returns the phase duration and per-task finish
/// times.
///
/// # Panics
/// If `slots == 0`.
pub fn simulate_phase(task_costs_ms: &[f64], slots: usize) -> PhaseResult {
    assert!(slots > 0, "a phase needs at least one slot");
    // f64 is not Ord; task costs are finite by construction, so an
    // integer-nanosecond heap keeps ordering exact and total.
    let mut heap: BinaryHeap<Reverse<u64>> = (0..slots).map(|_| Reverse(0u64)).collect();
    let mut finishes = Vec::with_capacity(task_costs_ms.len());
    let mut phase_end = 0u64;
    let mut busy = 0.0;
    for &cost in task_costs_ms {
        debug_assert!(cost.is_finite() && cost >= 0.0, "bad task cost {cost}");
        busy += cost;
        let Reverse(free_at) = heap.pop().expect("slots > 0");
        let finish = free_at + (cost * 1e6).round() as u64; // ms -> ns
        finishes.push(finish as f64 / 1e6);
        phase_end = phase_end.max(finish);
        heap.push(Reverse(finish));
    }
    PhaseResult {
        duration_ms: phase_end as f64 / 1e6,
        task_finish_ms: finishes,
        busy_ms: busy,
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_slot_serializes() {
        let r = simulate_phase(&[10.0, 20.0, 30.0], 1);
        assert!((r.duration_ms - 60.0).abs() < 1e-9);
        assert_eq!(r.task_finish_ms.len(), 3);
        assert!((r.task_finish_ms[2] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn enough_slots_run_everything_in_parallel() {
        let r = simulate_phase(&[10.0, 20.0, 15.0], 3);
        assert!((r.duration_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    fn waves_form_when_tasks_exceed_slots() {
        // 5 equal tasks on 2 slots -> 3 waves.
        let r = simulate_phase(&[10.0; 5], 2);
        assert!((r.duration_ms - 30.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_fills_the_earliest_slot() {
        // Tasks 30, 10, 10, 10 on 2 slots: slot A takes 30; slot B
        // takes 10+10+10 -> makespan 30.
        let r = simulate_phase(&[30.0, 10.0, 10.0, 10.0], 2);
        assert!((r.duration_ms - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_phase_is_instant() {
        let r = simulate_phase(&[], 4);
        assert_eq!(r.duration_ms, 0.0);
        assert_eq!(r.utilization(), 1.0, "vacuously fully utilized");
    }

    #[test]
    fn utilization_reflects_idle_slots() {
        // One 10ms task on 2 slots: one slot idles the whole phase.
        let r = simulate_phase(&[10.0], 2);
        assert!((r.utilization() - 0.5).abs() < 1e-9);
        // Two equal tasks on 2 slots: perfect utilization.
        let r = simulate_phase(&[10.0, 10.0], 2);
        assert!((r.utilization() - 1.0).abs() < 1e-6);
        // Skew: 30 + 10 on 2 slots -> busy 40 of 60 slot-ms.
        let r = simulate_phase(&[30.0, 10.0], 2);
        assert!((r.utilization() - 40.0 / 60.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = simulate_phase(&[1.0], 0);
    }

    proptest! {
        #[test]
        fn makespan_bounds(costs in proptest::collection::vec(0.0f64..1000.0, 1..50),
                           slots in 1usize..16) {
            let r = simulate_phase(&costs, slots);
            let total: f64 = costs.iter().sum();
            let max = costs.iter().cloned().fold(0.0, f64::max);
            // Lower bounds: critical path and perfect parallelism
            // (tolerances cover per-task ns rounding in either
            // direction).
            let rounding_lo = costs.len() as f64 * 1e-6 + 1e-6;
            prop_assert!(r.duration_ms + rounding_lo >= max);
            prop_assert!(r.duration_ms + rounding_lo >= total / slots as f64);
            // Upper bound: list scheduling never exceeds serial time,
            // and respects the Graham bound. Tolerances cover the
            // 0.5 ns-per-task rounding of the integer heap.
            let rounding = costs.len() as f64 * 1e-6;
            prop_assert!(r.duration_ms <= total + rounding);
            prop_assert!(r.duration_ms <= total / slots as f64 + max + rounding + 1e-3);
        }

        #[test]
        fn more_slots_never_hurt(costs in proptest::collection::vec(0.1f64..100.0, 1..40)) {
            // Note: list scheduling anomalies need task-order changes;
            // for a fixed order with greedy earliest-slot, more slots
            // cannot increase the makespan.
            let a = simulate_phase(&costs, 2).duration_ms;
            let b = simulate_phase(&costs, 4).duration_ms;
            prop_assert!(b <= a + 1e-6);
        }
    }
}
