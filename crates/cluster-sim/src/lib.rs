//! # cluster-sim — a virtual Hadoop cluster
//!
//! The paper's scalability experiments ran on up to 100 EC2 High-CPU
//! Medium instances. This crate replays *exactly reproduced* per-task
//! workloads (from `er-loadbalance`'s executed metrics or analytic
//! model) on a simulated cluster with the paper's setup — `n` nodes,
//! each running at most 2 map and 2 reduce tasks in parallel, FIFO
//! task scheduling — under a cost model whose dominant constant (time
//! per pair comparison) is *measured* on this machine and whose
//! Hadoop-era overheads (task startup, job setup) default to values
//! that land the BDM job near the paper's reported 35 s for DS1 at
//! n = 10.
//!
//! Simulated times are estimates; the deliverable is the *shape* of
//! the curves (who wins, by what factor, where crossovers fall), which
//! is driven by the exactly-known comparison counts.

pub mod cluster;
pub mod cost;
pub mod report;
pub mod scheduler;
pub mod workload;

pub use cluster::ClusterConfig;
pub use cost::CostModel;
pub use scheduler::{simulate_phase, PhaseResult};
pub use workload::{simulate_jobs, SimJob, SimOutcome};
