//! The cost model.
//!
//! Reduce-side matching dominates everything in this workload (the
//! paper measured >95 % of runtime in the reduce phase), so the model
//! needs one well-calibrated constant — time per pair comparison —
//! plus three ingredients that shape the curves' *ends*:
//!
//! * **framework factor**: the paper ran Hadoop 0.20 (one JVM per
//!   task, Writable (de)serialization, per-record pipeline costs).
//!   A native-Rust Levenshtein is ~15× cheaper per pair than that
//!   stack, so the calibrated native cost is multiplied by
//!   [`FRAMEWORK_FACTOR`] to represent the *simulated* environment;
//! * **task startup / job overhead**: Hadoop-era constants that make
//!   1 000 near-idle reduce tasks expensive (Figure 13's flattening);
//! * **computational skew**: the paper §VI-B — "the execution time of
//!   a reduce task may differ due to heterogeneous hardware and
//!   matching attribute values of different length. This computational
//!   skew diminishes for larger r" — modeled as a deterministic
//!   per-task work multiplier with coefficient of variation
//!   [`CostModel::comp_skew_cv`]. This is precisely what makes many
//!   small reduce tasks preferable to few perfectly sized ones, i.e.
//!   PairRange's gain at large `r` (Figure 10).

use std::time::Instant;

/// Ratio between the simulated Hadoop-0.20 per-pair cost and the
/// native cost measured by [`CostModel::calibrated`].
pub const FRAMEWORK_FACTOR: f64 = 15.0;

/// Cost constants, in nanoseconds unless suffixed otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One pair comparison (edit distance on ~25-char titles) in the
    /// simulated environment.
    pub pair_ns: f64,
    /// Reading one input record in a map task.
    pub map_record_ns: f64,
    /// Emitting one key-value pair from a map task.
    pub emit_ns: f64,
    /// Transferring + sorting one key-value pair into a reduce task.
    pub shuffle_ns: f64,
    /// Starting one task. The paper applied "the same changes to the
    /// Hadoop default configuration as in \[19\]" (Vernica et al.),
    /// which include JVM reuse — so this models a reused-JVM task
    /// launch, not a cold JVM start.
    pub task_startup_ms: f64,
    /// Per-job setup/teardown.
    pub job_overhead_ms: f64,
    /// Coefficient of variation of per-reduce-task computational skew
    /// (0 disables it).
    pub comp_skew_cv: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            pair_ns: 20_000.0,
            map_record_ns: 5_000.0,
            emit_ns: 2_000.0,
            shuffle_ns: 3_000.0,
            task_startup_ms: 300.0,
            job_overhead_ms: 15_000.0,
            comp_skew_cv: 0.25,
        }
    }
}

impl CostModel {
    /// Measures the native pair-comparison cost by timing normalized
    /// Levenshtein on synthetic ~25-character titles and scales it by
    /// [`FRAMEWORK_FACTOR`]; other constants keep Hadoop-era defaults.
    pub fn calibrated() -> Self {
        let titles: Vec<String> = (0..64)
            .map(|i| format!("cal{:02} abcdefghij{:012} xyz", i % 100, i * 7919))
            .collect();
        let start = Instant::now();
        let mut guard = 0usize;
        let mut comparisons = 0u64;
        for round in 0..8 {
            for i in 0..titles.len() {
                let j = (i + 1 + round) % titles.len();
                guard += levenshtein_len(&titles[i], &titles[j]);
                comparisons += 1;
            }
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(guard);
        let native_ns = (elapsed / comparisons as f64).max(50.0);
        Self {
            pair_ns: native_ns * FRAMEWORK_FACTOR,
            ..Self::default()
        }
    }

    /// Deterministic computational-skew multiplier for reduce task
    /// `index`: uniform in `1 ± cv·√3` (that interval has exactly the
    /// configured coefficient of variation), floored at 0.1.
    pub fn skew_multiplier(&self, index: usize) -> f64 {
        if self.comp_skew_cv <= 0.0 {
            return 1.0;
        }
        let amplitude = self.comp_skew_cv * 3f64.sqrt();
        let u = splitmix(index as u64) as f64 / u64::MAX as f64;
        (1.0 + amplitude * (2.0 * u - 1.0)).max(0.1)
    }

    /// Milliseconds for reduce task `index` receiving `kv_in` pairs
    /// and performing `comparisons` comparisons; the work portion is
    /// scaled by the task's computational-skew multiplier.
    pub fn reduce_task_ms(&self, index: usize, kv_in: u64, comparisons: u64) -> f64 {
        let work = (kv_in as f64 * self.shuffle_ns + comparisons as f64 * self.pair_ns) / 1e6;
        self.task_startup_ms + work * self.skew_multiplier(index)
    }

    /// Milliseconds for a map task over `records` inputs emitting
    /// `emitted` pairs.
    pub fn map_task_ms(&self, records: u64, emitted: u64) -> f64 {
        self.task_startup_ms
            + (records as f64 * self.map_record_ns + emitted as f64 * self.emit_ns) / 1e6
    }
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn levenshtein_len(a: &str, b: &str) -> usize {
    // Local copy of the two-row DP to keep this crate free of an
    // er-core dependency cycle; only used for calibration timing.
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = (prev[j] + usize::from(ca != cb))
                .min(prev[j + 1] + 1)
                .min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_skew() -> CostModel {
        CostModel {
            comp_skew_cv: 0.0,
            ..CostModel::default()
        }
    }

    #[test]
    fn calibration_produces_sane_constant() {
        let model = CostModel::calibrated();
        assert!(
            model.pair_ns >= 50.0 * FRAMEWORK_FACTOR && model.pair_ns < 1e7,
            "pair cost {} ns looks wrong",
            model.pair_ns
        );
    }

    #[test]
    fn reduce_cost_scales_with_comparisons() {
        let model = no_skew();
        let small = model.reduce_task_ms(0, 100, 1_000);
        let large = model.reduce_task_ms(0, 100, 1_000_000);
        assert!(large > small);
        // 1e6 comparisons at 20 µs each = 20 s on top of startup and
        // the 0.3 ms shuffle cost.
        assert!((large - model.task_startup_ms - 0.3 - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn startup_dominates_empty_tasks() {
        let model = CostModel::default();
        assert!((model.reduce_task_ms(7, 0, 0) - model.task_startup_ms).abs() < 1e-9);
        assert!((model.map_task_ms(0, 0) - model.task_startup_ms).abs() < 1e-9);
    }

    #[test]
    fn skew_multipliers_are_deterministic_and_centered() {
        let model = CostModel::default();
        let a: Vec<f64> = (0..1000).map(|i| model.skew_multiplier(i)).collect();
        let b: Vec<f64> = (0..1000).map(|i| model.skew_multiplier(i)).collect();
        assert_eq!(a, b, "deterministic");
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        let amplitude = model.comp_skew_cv * 3f64.sqrt();
        assert!(a
            .iter()
            .all(|&m| m >= 1.0 - amplitude - 1e-9 && m <= 1.0 + amplitude + 1e-9));
        // Realized CV close to configured.
        let var = a.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / a.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - model.comp_skew_cv).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn zero_cv_disables_skew() {
        let model = no_skew();
        assert_eq!(model.skew_multiplier(0), 1.0);
        assert_eq!(model.skew_multiplier(99), 1.0);
    }

    #[test]
    fn local_levenshtein_sanity() {
        assert_eq!(levenshtein_len("kitten", "sitting"), 3);
        assert_eq!(levenshtein_len("", "abc"), 3);
    }
}
