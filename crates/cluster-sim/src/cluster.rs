//! Cluster topology.

/// A virtual cluster: `n` identical nodes with fixed task-slot counts
/// per node — the paper's setup is 2 map + 2 reduce slots per node
/// ("Each node was configured to run at most two map and reduce tasks
/// in parallel").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of worker nodes `n`.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
}

impl ClusterConfig {
    /// The paper's node configuration with `n` nodes.
    pub fn paper(nodes: usize) -> Self {
        Self {
            nodes,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
        }
    }

    /// Total concurrent map tasks.
    pub fn map_slots(&self) -> usize {
        self.nodes * self.map_slots_per_node
    }

    /// Total concurrent reduce tasks.
    pub fn reduce_slots(&self) -> usize {
        self.nodes * self.reduce_slots_per_node
    }

    /// The paper's task counts for `n` nodes in the scalability
    /// experiment: `m = 2n`, `r = 10n` (Section VI-C).
    pub fn paper_task_counts(&self) -> (usize, usize) {
        (2 * self.nodes, 10 * self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup() {
        let c = ClusterConfig::paper(10);
        assert_eq!(c.map_slots(), 20);
        assert_eq!(c.reduce_slots(), 20);
        assert_eq!(c.paper_task_counts(), (20, 100));
    }

    #[test]
    fn single_node() {
        let c = ClusterConfig::paper(1);
        assert_eq!(c.map_slots(), 2);
        assert_eq!(c.paper_task_counts(), (2, 10));
    }
}
